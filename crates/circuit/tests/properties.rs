//! Property tests over the circuit IR.

use proptest::prelude::*;
use quva_circuit::{optimize, qasm, Circuit, Gate, Layers, OneQubitKind, Qubit};

/// Strategy: a random circuit over `n` qubits.
fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = prop_oneof![
        // single-qubit gates
        (0..n, 0usize..9).prop_map(move |(q, k)| {
            let kind = [
                OneQubitKind::I,
                OneQubitKind::X,
                OneQubitKind::Y,
                OneQubitKind::Z,
                OneQubitKind::H,
                OneQubitKind::S,
                OneQubitKind::Sdg,
                OneQubitKind::T,
                OneQubitKind::Tdg,
            ][k];
            GateSpec::One(q as u32, kind)
        }),
        // rotations
        (0..n, -30i32..30, 0usize..3).prop_map(|(q, a, axis)| {
            let angle = a as f64 / 10.0;
            let kind = match axis {
                0 => OneQubitKind::Rx(angle),
                1 => OneQubitKind::Ry(angle),
                _ => OneQubitKind::Rz(angle),
            };
            GateSpec::One(q as u32, kind)
        }),
        // two-qubit gates
        (0..n, 0..n, any::<bool>()).prop_filter_map("distinct", move |(a, b, is_swap)| {
            (a != b).then_some(GateSpec::Two(a as u32, b as u32, is_swap))
        }),
    ];
    prop::collection::vec(gate, 0..max_gates).prop_map(move |specs| {
        let mut c = Circuit::new(n);
        for s in specs {
            match s {
                GateSpec::One(q, kind) => {
                    c.one(kind, Qubit(q));
                }
                GateSpec::Two(a, b, true) => {
                    c.swap(Qubit(a), Qubit(b));
                }
                GateSpec::Two(a, b, false) => {
                    c.cnot(Qubit(a), Qubit(b));
                }
            }
        }
        c
    })
}

#[derive(Debug, Clone, Copy)]
enum GateSpec {
    One(u32, OneQubitKind),
    Two(u32, u32, bool),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// QASM export → import is the identity.
    #[test]
    fn qasm_roundtrip(c in arb_circuit(5, 40)) {
        let mut with_measures = c.clone();
        with_measures.measure_all();
        let text = qasm::to_qasm(&with_measures);
        let back = qasm::from_qasm(&text).expect("exported qasm parses");
        prop_assert_eq!(with_measures, back);
    }

    /// The optimizer never grows a circuit and never changes register
    /// shapes.
    #[test]
    fn optimizer_shrinks(c in arb_circuit(5, 40)) {
        let (opt, stats) = optimize(&c);
        prop_assert!(opt.len() <= c.len());
        prop_assert_eq!(c.len() - opt.len(), stats.total_removed());
        prop_assert_eq!(opt.num_qubits(), c.num_qubits());
        prop_assert_eq!(opt.num_cbits(), c.num_cbits());
    }

    /// The optimizer is idempotent: a second pass removes nothing.
    #[test]
    fn optimizer_is_idempotent(c in arb_circuit(4, 30)) {
        let (once, _) = optimize(&c);
        let (twice, stats) = optimize(&once);
        prop_assert_eq!(once, twice);
        prop_assert_eq!(stats.total_removed(), 0);
    }

    /// Layering covers every gate exactly once and respects dependencies.
    #[test]
    fn layering_is_a_valid_schedule(c in arb_circuit(6, 50)) {
        let layers = Layers::of(&c);
        let mut seen: Vec<usize> = layers.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..c.len()).collect();
        prop_assert_eq!(seen, expected);
        // within a layer, gates touch disjoint qubits
        for i in 0..layers.len() {
            let mut used = vec![false; c.num_qubits()];
            for &g in layers.layer(i) {
                for q in c.gates()[g].qubits() {
                    prop_assert!(!used[q.index()]);
                    used[q.index()] = true;
                }
            }
        }
    }

    /// Depth equals the number of layers for barrier-free circuits.
    #[test]
    fn depth_equals_layer_count(c in arb_circuit(5, 40)) {
        prop_assert_eq!(c.depth(), Layers::of(&c).len());
    }

    /// Gate counts are consistent.
    #[test]
    fn gate_count_identities(c in arb_circuit(5, 40)) {
        prop_assert_eq!(
            c.op_count(),
            c.one_qubit_gate_count() + c.cnot_count() + c.swap_count() + c.measure_count()
        );
        prop_assert_eq!(c.total_cnot_cost(), c.cnot_count() + 3 * c.swap_count());
    }
}

/// Non-proptest regression: a barrier round-trips through QASM.
#[test]
fn barrier_roundtrip() {
    let mut c = Circuit::new(3);
    c.h(Qubit(0));
    c.barrier_all();
    c.cnot(Qubit(0), Qubit(1));
    let back = qasm::from_qasm(&qasm::to_qasm(&c)).unwrap();
    assert_eq!(c, back);
    assert!(matches!(back.gates()[1], Gate::Barrier { .. }));
}
