//! Ablations of the design choices DESIGN.md calls out — beyond the
//! paper's own figures.

use quva::{AllocationStrategy, MappingPolicy, RoutingMetric};
use quva_benchmarks::{table1_suite, Benchmark};
use quva_circuit::optimize;
use quva_device::Device;
use quva_sim::CoherenceModel;
use quva_stats::{fmt3, fmt_ratio, Table};

use crate::policy_eval::{coherence_ratio, pst_of};

/// MAH sweep: how much of VQM's benefit survives as the detour budget
/// shrinks (§5.3 argues MAH = 4 is enough; this quantifies the whole
/// curve).
pub fn ablation_mah() -> Table {
    let device = Device::ibm_q20();
    let budgets: Vec<(String, Option<u32>)> = vec![
        ("MAH=0".into(), Some(0)),
        ("MAH=1".into(), Some(1)),
        ("MAH=2".into(), Some(2)),
        ("MAH=4".into(), Some(4)),
        ("MAH=8".into(), Some(8)),
        ("unconstrained".into(), None),
    ];
    let mut header = vec!["benchmark".to_string()];
    header.extend(budgets.iter().map(|(n, _)| n.clone()));
    let mut table = Table::new(header);
    for bench in table1_suite() {
        let base = pst_of(MappingPolicy::baseline(), &bench, &device);
        let mut row = vec![bench.name().to_string()];
        for (_, mah) in &budgets {
            let policy = MappingPolicy {
                allocation: AllocationStrategy::GreedyInteraction,
                routing: RoutingMetric::Reliability {
                    max_additional_hops: *mah,
                    optimize_meeting_edge: false,
                },
            };
            row.push(fmt_ratio(pst_of(policy, &bench, &device) / base));
        }
        table.row(row);
    }
    table
}

/// Meeting-edge extension: executing the CNOT across the weakest route
/// edge (1 use) instead of swapping through it (3 uses) — a quva
/// extension beyond the paper's Algorithm 1.
pub fn ablation_meeting_edge() -> Table {
    let device = Device::ibm_q20();
    let mut table = Table::new(["benchmark", "VQM", "VQM+meeting-edge", "extension_gain"]);
    for bench in table1_suite() {
        let vqm = pst_of(MappingPolicy::vqm(), &bench, &device);
        let ext_policy = MappingPolicy {
            allocation: AllocationStrategy::GreedyInteraction,
            routing: RoutingMetric::reliability_with_meeting_edge(),
        };
        let ext = pst_of(ext_policy, &bench, &device);
        table.row([
            bench.name().to_string(),
            fmt3(vqm),
            fmt3(ext),
            fmt_ratio(ext / vqm),
        ]);
    }
    table
}

/// Peephole optimizer ablation: gates removed and PST gained by running
/// the optimizer before mapping.
pub fn ablation_optimizer() -> Table {
    let device = Device::ibm_q20();
    let mut table = Table::new([
        "benchmark",
        "gates",
        "gates_optimized",
        "pst_raw",
        "pst_optimized",
        "gain",
    ]);
    for bench in table1_suite() {
        let raw = bench.circuit();
        let (opt, _) = optimize(raw);
        let pst_raw = pst_of(MappingPolicy::vqa_vqm(), &bench, &device);
        let opt_bench = Benchmark::new(bench.name(), opt.clone(), bench.accepted().map(<[u64]>::to_vec));
        let pst_opt = pst_of(MappingPolicy::vqa_vqm(), &opt_bench, &device);
        table.row([
            bench.name().to_string(),
            raw.len().to_string(),
            opt.len().to_string(),
            fmt3(pst_raw),
            fmt3(pst_opt),
            fmt_ratio(pst_opt / pst_raw),
        ]);
    }
    table
}

/// Correlated-error robustness (§9's relaxed assumption): does the
/// variation-aware benefit survive when links drift in bursts within a
/// trial window?
pub fn ablation_correlated_errors() -> Table {
    use quva_sim::{monte_carlo_pst_correlated, CorrelatedModel};
    let device = Device::ibm_q20();
    let model = CorrelatedModel {
        burst_probability: 0.1,
        burst_multiplier: 3.0,
    };
    let trials = 200_000;
    let mut table = Table::new([
        "benchmark",
        "baseline_corr",
        "vqa_vqm_corr",
        "benefit_corr",
        "benefit_independent",
    ]);
    for bench in [Benchmark::bv(16), Benchmark::bv(20), Benchmark::alu()] {
        let pst_corr = |policy: MappingPolicy, seed: u64| -> f64 {
            let compiled = policy
                .compile(bench.circuit(), &device)
                .unwrap_or_else(|e| panic!("suite compiles: {e}"));
            monte_carlo_pst_correlated(&device, compiled.physical(), trials, seed, model)
                .unwrap_or_else(|e| panic!("routed circuit evaluates: {e}"))
                .pst
        };
        let base = pst_corr(MappingPolicy::baseline(), 1);
        let aware = pst_corr(MappingPolicy::vqa_vqm(), 1);
        let independent = pst_of(MappingPolicy::vqa_vqm(), &bench, &device)
            / pst_of(MappingPolicy::baseline(), &bench, &device);
        table.row([
            bench.name().to_string(),
            fmt3(base),
            fmt3(aware),
            fmt_ratio(aware / base),
            fmt_ratio(independent),
        ]);
    }
    table
}

/// Crosstalk robustness (extension): the benefit evaluated under
/// simultaneous-drive crosstalk between neighbouring links — a noise
/// mechanism neither policy optimizes for.
pub fn ablation_crosstalk() -> Table {
    use quva_sim::{analytic_pst_with_crosstalk, CrosstalkModel};
    let device = Device::ibm_q20();
    let model = CrosstalkModel { factor: 2.0 };
    let mut table = Table::new([
        "benchmark",
        "baseline_xt",
        "vqa_vqm_xt",
        "benefit_xt",
        "benefit_no_xt",
    ]);
    for bench in table1_suite() {
        let pst_xt = |policy: MappingPolicy| -> f64 {
            let compiled = policy
                .compile(bench.circuit(), &device)
                .unwrap_or_else(|e| panic!("suite compiles: {e}"));
            analytic_pst_with_crosstalk(&device, compiled.physical(), CoherenceModel::Disabled, model)
                .unwrap_or_else(|e| panic!("routed circuit evaluates: {e}"))
                .pst
        };
        let base = pst_xt(MappingPolicy::baseline());
        let aware = pst_xt(MappingPolicy::vqa_vqm());
        let plain = pst_of(MappingPolicy::vqa_vqm(), &bench, &device)
            / pst_of(MappingPolicy::baseline(), &bench, &device);
        table.row([
            bench.name().to_string(),
            fmt3(base),
            fmt3(aware),
            fmt_ratio(aware / base),
            fmt_ratio(plain),
        ]);
    }
    table
}

/// Readout-aware allocation (extension): measured program qubits are
/// additionally pulled towards low-readout-error physical qubits.
pub fn ablation_readout() -> Table {
    let device = Device::ibm_q20();
    let mut table = Table::new(["benchmark", "vqa_vqm", "vqa_ro_vqm", "gain"]);
    for bench in table1_suite() {
        let base = pst_of(MappingPolicy::vqa_vqm(), &bench, &device);
        let aware_policy = MappingPolicy {
            allocation: AllocationStrategy::vqa_readout_aware(),
            routing: RoutingMetric::reliability(),
        };
        let aware = pst_of(aware_policy, &bench, &device);
        table.row([
            bench.name().to_string(),
            fmt3(base),
            fmt3(aware),
            fmt_ratio(aware / base),
        ]);
    }
    table
}

/// Router architecture ablation: the default stepwise lookahead router
/// vs the plan-based router (whole SWAP chains, no lookahead).
pub fn ablation_router() -> Table {
    let device = Device::ibm_q20();
    let mut table = Table::new([
        "benchmark",
        "stepwise_swaps",
        "plan_swaps",
        "stepwise_pst",
        "plan_pst",
        "stepwise_advantage",
    ]);
    for bench in table1_suite() {
        let stepwise = MappingPolicy::vqm()
            .compile(bench.circuit(), &device)
            .unwrap_or_else(|e| panic!("suite compiles: {e}"));
        let plan = MappingPolicy::vqm()
            .compile_plan_based(bench.circuit(), &device)
            .unwrap_or_else(|e| panic!("suite compiles plan-based: {e}"));
        let pst = |c: &quva::CompiledCircuit| {
            c.analytic_pst(&device, CoherenceModel::Disabled)
                .unwrap_or_else(|e| panic!("routed: {e}"))
                .pst
        };
        let (ps, pp) = (pst(&stepwise), pst(&plan));
        table.row([
            bench.name().to_string(),
            stepwise.inserted_swaps().to_string(),
            plan.inserted_swaps().to_string(),
            fmt3(ps),
            fmt3(pp),
            fmt_ratio(ps / pp.max(f64::MIN_POSITIVE)),
        ]);
    }
    table
}

/// The §4.4 decomposition: gate-to-coherence failure-weight ratio per
/// workload under the idle-window coherence model.
pub fn section4_coherence() -> Table {
    let device = Device::ibm_q20();
    let mut table = Table::new(["benchmark", "gate_to_coherence_ratio"]);
    for bench in table1_suite() {
        table.row([
            bench.name().to_string(),
            format!("{:.2}", coherence_ratio(&bench, &device)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ratio(cell: &str) -> f64 {
        cell.trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn mah_zero_is_near_baseline_and_budget_never_hurts_much() {
        let t = ablation_mah();
        assert_eq!(t.len(), 7);
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let mah0 = parse_ratio(cells[1]);
            // MAH=0 still reorders *which* shortest route is taken, so it
            // retains part of the benefit but no detours
            assert!(mah0 > 0.2, "{}: MAH=0 rel {mah0}", cells[0]);
        }
    }

    #[test]
    fn meeting_edge_extension_is_neutral_on_light_workloads() {
        // The ablation's finding (documented in EXPERIMENTS.md): the
        // extension's local gain is real but its perturbation of the
        // routing trajectory dominates on dense workloads, so it is not
        // part of the headline policies. On the light workloads the two
        // variants stay close.
        let t = ablation_meeting_edge();
        let gains: Vec<(String, f64)> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| {
                let cells: Vec<&str> = l.split(',').collect();
                (cells[0].to_string(), parse_ratio(cells[3]))
            })
            .collect();
        for (name, gain) in &gains {
            if ["alu", "bv-16", "bv-20"].contains(&name.as_str()) {
                // empirical band, pinned to the workspace's deterministic
                // calibration stream (vendor/rand)
                assert!(
                    (0.7..1.5).contains(gain),
                    "{name}: extension gain {gain} not near-neutral"
                );
            } else {
                assert!(gain.is_finite() && *gain > 0.0, "{name}: invalid gain {gain}");
            }
        }
    }

    #[test]
    fn optimizer_never_hurts_reliability_substantially() {
        let t = ablation_optimizer();
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let gain = parse_ratio(cells[5]);
            assert!(gain > 0.5, "{}: optimizer gain {gain}", cells[0]);
            let raw: usize = cells[1].parse().unwrap();
            let opt: usize = cells[2].parse().unwrap();
            assert!(opt <= raw, "{}: optimizer grew the circuit", cells[0]);
        }
    }

    #[test]
    fn correlated_errors_preserve_the_benefit() {
        let t = ablation_correlated_errors();
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let benefit = parse_ratio(cells[3]);
            assert!(benefit > 1.0, "{}: correlated benefit {benefit}", cells[0]);
        }
    }

    #[test]
    fn stepwise_router_wins_overall() {
        let t = ablation_router();
        let mut advantage_product = 1.0;
        for line in t.to_csv().lines().skip(1) {
            advantage_product *= parse_ratio(line.split(',').next_back().unwrap());
        }
        assert!(
            advantage_product > 1.0,
            "stepwise router lost to plan-based overall: product {advantage_product}"
        );
    }

    #[test]
    fn crosstalk_preserves_the_benefit_mostly() {
        let t = ablation_crosstalk();
        let mut wins = 0;
        for line in t.to_csv().lines().skip(1) {
            let benefit = parse_ratio(line.split(',').nth(3).unwrap());
            if benefit > 1.0 {
                wins += 1;
            }
        }
        assert!(wins >= 5, "benefit survived crosstalk on only {wins}/7 workloads");
    }

    #[test]
    fn readout_awareness_does_not_hurt_on_average() {
        let t = ablation_readout();
        let gains: Vec<f64> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| parse_ratio(l.split(',').nth(3).unwrap()))
            .collect();
        let geo: f64 = gains.iter().map(|g| g.ln()).sum::<f64>() / gains.len() as f64;
        assert!(geo.exp() > 0.8, "readout awareness geomean gain {}", geo.exp());
    }

    #[test]
    fn coherence_ratios_are_finite_and_positive() {
        let t = section4_coherence();
        for line in t.to_csv().lines().skip(1) {
            let ratio: f64 = line.split(',').nth(1).unwrap().parse().unwrap();
            assert!(ratio > 0.0 && ratio < 1e4, "ratio {ratio}");
        }
    }
}
