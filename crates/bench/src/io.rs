//! Result-file plumbing for the experiment harness.

use std::fs;
use std::path::{Path, PathBuf};

use quva_stats::Table;

/// The `results/` directory at the workspace root, created on demand.
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("results directory must be creatable: {e}"));
    dir
}

/// Writes a table as `results/<name>.csv` and returns the path.
pub fn write_csv(name: &str, table: &Table) -> PathBuf {
    let path = results_dir().join(format!("{name}.csv"));
    fs::write(&path, table.to_csv()).unwrap_or_else(|e| panic!("results csv must be writable: {e}"));
    path
}

/// Prints an experiment banner, the table, and persists the CSV.
pub fn report(id: &str, title: &str, table: &Table) {
    println!("== {id}: {title} ==");
    print!("{table}");
    let path = write_csv(id, table);
    println!("[written {}]\n", path.display());
}
