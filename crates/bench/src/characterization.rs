//! Experiments reproducing the §3 characterization figures (Figs. 5–9):
//! the distributions and spatial/temporal structure of device variation.

use quva_device::{CalibrationGenerator, Device, Topology, VariationProfile};
use quva_stats::{fmt3, mean, std_dev, Histogram, Table};

/// Number of characterization snapshots aggregated per distribution —
/// the paper gathered "more than 100" reports over 52 days.
pub const SNAPSHOTS: usize = 100;

/// Fixed seed for the characterization sweep (every figure regenerates
/// identically).
pub const SEED: u64 = 52;

/// Collects `SNAPSHOTS` calibrations of IBM-Q20.
fn snapshots() -> (Topology, Vec<quva_device::Calibration>) {
    let topo = Topology::ibm_q20_tokyo();
    let mut g = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), SEED);
    let cals = (0..SNAPSHOTS).map(|_| g.snapshot(&topo)).collect();
    (topo, cals)
}

/// Figure 5: the T1/T2 coherence-time distributions (20 qubits × 100
/// samples = 2000 points each). Returns the binned frequencies plus the
/// summary line the paper quotes (T1 80.32 ± 35.23 µs, T2 42.13 ±
/// 13.34 µs).
pub fn fig05_coherence() -> (Table, Histogram, Histogram) {
    let (_, cals) = snapshots();
    let t1: Vec<f64> = cals.iter().flat_map(|c| c.t1_table().to_vec()).collect();
    let t2: Vec<f64> = cals.iter().flat_map(|c| c.t2_table().to_vec()).collect();
    let mut h1 = Histogram::new(0.0, 250.0, 25);
    h1.extend(t1.iter().copied());
    let mut h2 = Histogram::new(0.0, 125.0, 25);
    h2.extend(t2.iter().copied());

    let mut table = Table::new([
        "metric",
        "paper_mean",
        "paper_std",
        "measured_mean",
        "measured_std",
        "samples",
    ]);
    table.row([
        "T1_us",
        "80.32",
        "35.23",
        &fmt3(mean(&t1)),
        &fmt3(std_dev(&t1)),
        &t1.len().to_string(),
    ]);
    table.row([
        "T2_us",
        "42.13",
        "13.34",
        &fmt3(mean(&t2)),
        &fmt3(std_dev(&t2)),
        &t2.len().to_string(),
    ]);
    (table, h1, h2)
}

/// Figure 6: single-qubit operation error-rate distribution (percent).
/// The paper reports "a large fraction below 1 %".
pub fn fig06_error1q() -> (Table, Histogram) {
    let (_, cals) = snapshots();
    let e1q_pct: Vec<f64> = cals
        .iter()
        .flat_map(|c| c.one_qubit_errors().iter().map(|e| e * 100.0).collect::<Vec<_>>())
        .collect();
    let mut h = Histogram::new(0.0, 4.0, 40);
    h.extend(e1q_pct.iter().copied());
    let below_1pct = e1q_pct.iter().filter(|&&e| e < 1.0).count() as f64 / e1q_pct.len() as f64;

    let mut table = Table::new(["metric", "value"]);
    table.row(["mean_error_pct", &fmt3(mean(&e1q_pct))]);
    table.row(["std_error_pct", &fmt3(std_dev(&e1q_pct))]);
    table.row(["fraction_below_1pct", &fmt3(below_1pct)]);
    table.row(["samples", &e1q_pct.len().to_string()]);
    (table, h)
}

/// Figure 7: two-qubit operation error-rate distribution over 38
/// undirected links × 100 snapshots. Paper: mean 4.3 %, σ 3.02 %.
pub fn fig07_error2q() -> (Table, Histogram) {
    let (_, cals) = snapshots();
    let e2q_pct: Vec<f64> = cals
        .iter()
        .flat_map(|c| c.two_qubit_errors().iter().map(|e| e * 100.0).collect::<Vec<_>>())
        .collect();
    let mut h = Histogram::new(0.0, 20.0, 40);
    h.extend(e2q_pct.iter().copied());

    let mut table = Table::new(["metric", "paper", "measured"]);
    table.row(["mean_error_pct", "4.30", &fmt3(mean(&e2q_pct))]);
    table.row(["std_error_pct", "3.02", &fmt3(std_dev(&e2q_pct))]);
    table.row(["samples", "7600", &e2q_pct.len().to_string()]);
    (table, h)
}

/// Figure 8: temporal drift of three links (strongest, median, weakest
/// by persistent behaviour) over 25 daily calibrations. The key shape:
/// the strong link stays mostly strong.
pub fn fig08_temporal() -> Table {
    let topo = Topology::ibm_q20_tokyo();
    let mut g = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), SEED);
    let days = g.daily_series(&topo, 25);

    // rank links by mean error over the window
    let num_links = topo.num_links();
    let mean_of =
        |id: usize| -> f64 { mean(&days.iter().map(|d| d.two_qubit_error(id)).collect::<Vec<_>>()) };
    let mut ids: Vec<usize> = (0..num_links).collect();
    ids.sort_by(|&a, &b| mean_of(a).total_cmp(&mean_of(b)));
    let (strong, median_link, weak) = (ids[0], ids[num_links / 2], ids[num_links - 1]);

    let label = |id: usize| {
        let l = topo.links()[id];
        format!("CX{}_{}", l.low().index(), l.high().index())
    };
    let mut table = Table::new(["day", &label(strong), &label(median_link), &label(weak)]);
    for (d, cal) in days.iter().enumerate() {
        table.row([
            d.to_string(),
            fmt3(cal.two_qubit_error(strong) * 100.0),
            fmt3(cal.two_qubit_error(median_link) * 100.0),
            fmt3(cal.two_qubit_error(weak) * 100.0),
        ]);
    }
    table
}

/// Figure 9: the spatial error map of IBM-Q20 — per-link average
/// failure rates with the published extremes (best 0.02, worst 0.15 on
/// Q14–Q18, a 7.5x spread).
pub fn fig09_spatial() -> Table {
    let device = Device::ibm_q20();
    let topo = device.topology();
    let cal = device.calibration();
    let mut table = Table::new(["link", "failure_rate"]);
    for (id, link) in topo.links().iter().enumerate() {
        table.row([link.to_string(), fmt3(cal.two_qubit_error(id))]);
    }
    let (best, worst) = cal.two_qubit_error_range();
    table.row(["best".into(), fmt3(best)]);
    table.row(["worst".into(), fmt3(worst)]);
    table.row(["spread".into(), format!("{:.1}x", cal.variation_ratio())]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig05_statistics_near_paper() {
        let (table, h1, h2) = fig05_coherence();
        assert_eq!(table.len(), 2);
        assert_eq!(h1.total(), 2000);
        assert_eq!(h2.total(), 2000);
        let csv = table.to_csv();
        // measured T1 mean within 10 µs of 80.32
        let t1_row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        let measured: f64 = t1_row[3].parse().unwrap();
        assert!((measured - 80.32).abs() < 10.0, "T1 mean {measured}");
    }

    #[test]
    fn fig06_mostly_below_one_percent() {
        let (table, _) = fig06_error1q();
        let csv = table.to_csv();
        let frac: f64 = csv
            .lines()
            .find(|l| l.starts_with("fraction_below_1pct"))
            .unwrap()
            .split(',')
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(frac > 0.5, "only {frac} of 1q errors below 1%");
    }

    #[test]
    fn fig07_moments_near_paper() {
        let (table, h) = fig07_error2q();
        assert_eq!(h.total() as usize, SNAPSHOTS * 38);
        let csv = table.to_csv();
        let mean_row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        let measured: f64 = mean_row[2].parse().unwrap();
        assert!((measured - 4.3).abs() < 1.5, "2q mean {measured}%");
    }

    #[test]
    fn fig08_strong_link_stays_strong() {
        let table = fig08_temporal();
        assert_eq!(table.len(), 25);
        let csv = table.to_csv();
        let mut strong_wins = 0;
        for line in csv.lines().skip(1) {
            let cells: Vec<f64> = line.split(',').skip(1).map(|c| c.parse().unwrap()).collect();
            if cells[0] < cells[2] {
                strong_wins += 1;
            }
        }
        assert!(
            strong_wins >= 22,
            "strong link beat weak on only {strong_wins}/25 days"
        );
    }

    #[test]
    fn fig09_has_published_extremes() {
        let table = fig09_spatial();
        let csv = table.to_csv();
        assert!(csv.contains("Q14–Q18,0.150"));
        assert!(csv.contains("spread,7.5x"));
    }
}
