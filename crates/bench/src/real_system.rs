//! Experiment reproducing §7's real-system evaluation (Table 3) on the
//! noisy state-vector stand-in for IBM-Q5, plus §8's partitioning study
//! (Fig. 16).

use quva::{partition_analysis, MappingPolicy};
use quva_benchmarks::{ibm_q5_suite, partition_suite};
use quva_device::Device;
use quva_sim::{run_noisy_trials, CoherenceModel};
use quva_stats::{fmt3, fmt_ratio, geomean, Table};

/// Trials per §7 experiment (the paper's IBM-Q5 runs used 4096).
pub const Q5_TRIALS: u64 = 4096;

/// Multiplier applied to the Q5 calibration for the noisy runs: real
/// NISQ hardware under-performs its isolated randomized-benchmarking
/// numbers (crosstalk, drift between calibrations), which is why the
/// paper's measured Tenerife PSTs (0.13–0.57) sit far below what the
/// published error rates alone predict. The surcharge brings the
/// simulated machine's absolute PST scale in line with §7's
/// measurements; the compiler still only sees the *unscaled*
/// calibration, exactly as on the real machine.
pub const Q5_EFFECTIVE_NOISE: f64 = 3.0;

/// Table 3: PST of the baseline and VQA+VQM for the §7 workloads on the
/// noisy IBM-Q5 simulator, with the geometric-mean benefit.
///
/// PST here is *output correctness* over noisy state-vector trials —
/// the same criterion as running on the physical machine — not
/// fault-freeness.
pub fn table3_ibmq5(seed: u64) -> Table {
    let device = Device::ibm_q5();
    let hardware = device
        .with_calibration(device.calibration().with_errors_scaled(Q5_EFFECTIVE_NOISE))
        .unwrap_or_else(|e| panic!("scaled calibration stays valid: {e}"));
    let mut table = Table::new(["benchmark", "pst_baseline", "pst_vqa_vqm", "relative_benefit"]);
    let mut benefits = Vec::new();
    for b in ibm_q5_suite() {
        let pst = |policy: MappingPolicy| -> f64 {
            // compile against the published calibration, execute on the
            // harsher effective-noise machine — as §7 did on hardware
            let compiled = policy
                .compile(b.circuit(), &device)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", policy.name(), b.name()));
            run_noisy_trials(&hardware, compiled.physical(), Q5_TRIALS, seed)
                .unwrap_or_else(|e| panic!("compiled circuits are routed: {e}"))
                .success_rate(|o| b.is_success(o))
        };
        let base = pst(MappingPolicy::baseline());
        let aware = pst(MappingPolicy::vqa_vqm());
        benefits.push(aware / base);
        table.row([
            b.name().to_string(),
            fmt3(base),
            fmt3(aware),
            fmt_ratio(aware / base),
        ]);
    }
    table.row([
        "GeoMean".into(),
        "".into(),
        "".into(),
        fmt_ratio(geomean(&benefits)),
    ]);
    table
}

/// Table 3, exact variant: the same §7 experiment evaluated with the
/// density-matrix simulator — the *expectation* of the 4096-trial
/// sampling run, free of shot noise. The two tables agreeing is a
/// cross-validation of both engines.
pub fn table3_ibmq5_exact() -> Table {
    let device = Device::ibm_q5();
    let hardware = device
        .with_calibration(device.calibration().with_errors_scaled(Q5_EFFECTIVE_NOISE))
        .unwrap_or_else(|e| panic!("scaled calibration stays valid: {e}"));
    let mut table = Table::new(["benchmark", "pst_baseline", "pst_vqa_vqm", "relative_benefit"]);
    let mut benefits = Vec::new();
    for b in ibm_q5_suite() {
        let pst = |policy: MappingPolicy| -> f64 {
            let compiled = policy
                .compile(b.circuit(), &device)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", policy.name(), b.name()));
            let dist = quva_sim::exact_noisy_distribution(&hardware, compiled.physical())
                .unwrap_or_else(|e| panic!("compiled circuits are routed: {e}"));
            dist.iter()
                .enumerate()
                .filter(|(o, _)| b.is_success(*o as u64))
                .map(|(_, &p)| p)
                .sum()
        };
        let base = pst(MappingPolicy::baseline());
        let aware = pst(MappingPolicy::vqa_vqm());
        benefits.push(aware / base);
        table.row([
            b.name().to_string(),
            fmt3(base),
            fmt3(aware),
            fmt_ratio(aware / base),
        ]);
    }
    table.row([
        "GeoMean".into(),
        "".into(),
        "".into(),
        fmt_ratio(geomean(&benefits)),
    ]);
    table
}

/// Cross-topology generalization (beyond the paper): the VQA+VQM
/// benefit on other device families — the Melbourne ladder, a plain
/// 4×5 mesh, and a sparse heavy-hex — each with a seeded synthetic
/// calibration drawn from the paper's IBM-Q20 variation profile.
pub fn ext_topologies() -> Table {
    use quva_device::{CalibrationGenerator, Topology, VariationProfile};
    let topologies = vec![
        Topology::ibm_q20_tokyo(),
        Topology::ibm_q16_melbourne(),
        Topology::grid(4, 5),
        Topology::heavy_hex(4, 5),
    ];
    let mut table = Table::new([
        "topology",
        "qubits",
        "links",
        "baseline_pst",
        "vqa_vqm_pst",
        "benefit",
    ]);
    for topo in topologies {
        let mut gen = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 4);
        let cal = gen.snapshot(&topo);
        let device =
            Device::from_parts(topo, cal).unwrap_or_else(|e| panic!("generated calibration fits: {e}"));
        let bench = quva_benchmarks::Benchmark::bv(10);
        let pst = |policy: MappingPolicy| -> f64 {
            policy
                .compile(bench.circuit(), &device)
                .unwrap_or_else(|e| panic!("bv-10 fits every candidate topology: {e}"))
                .analytic_pst(&device, CoherenceModel::Disabled)
                .unwrap_or_else(|e| panic!("routed: {e}"))
                .pst
        };
        let base = pst(MappingPolicy::baseline());
        let aware = pst(MappingPolicy::vqa_vqm());
        table.row([
            device.topology().name().to_string(),
            device.num_qubits().to_string(),
            device.topology().num_links().to_string(),
            fmt3(base),
            fmt3(aware),
            fmt_ratio(aware / base),
        ]);
    }
    table
}

/// Figure 16: successful trials per unit time for two concurrent copies
/// versus one strong copy, normalized to the two-copy configuration
/// (10-qubit workloads on IBM-Q20).
pub fn fig16_partitioning() -> Table {
    let device = Device::ibm_q20();
    let mut table = Table::new([
        "benchmark",
        "stpt_two_copies",
        "stpt_one_strong",
        "norm_two",
        "norm_one",
        "winner",
    ]);
    for b in partition_suite() {
        let report = partition_analysis(
            b.circuit(),
            &device,
            MappingPolicy::vqa_vqm(),
            CoherenceModel::IdleWindow,
        )
        .unwrap_or_else(|e| panic!("partitioning failed on {}: {e}", b.name()));
        let two = report.stpt_two();
        let one = report.stpt_one();
        let denom = if two > 0.0 { two } else { 1.0 };
        table.row([
            b.name().to_string(),
            fmt3(two),
            fmt3(one),
            fmt3(two / denom),
            fmt3(one / denom),
            format!("{:?}", report.recommend()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shows_aggregate_benefit() {
        let t = table3_ibmq5(1);
        assert_eq!(t.len(), 5); // 4 workloads + geomean
        let csv = t.to_csv();
        let geomean_benefit: f64 = csv
            .lines()
            .find(|l| l.starts_with("GeoMean"))
            .unwrap()
            .split(',')
            .next_back()
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(
            geomean_benefit >= 1.0,
            "variation-aware policy lost on the noisy Q5: {geomean_benefit}"
        );
    }

    #[test]
    fn table3_psts_are_plausible() {
        let t = table3_ibmq5(2);
        for line in t.to_csv().lines().skip(1).take(4) {
            let cells: Vec<&str> = line.split(',').collect();
            let base: f64 = cells[1].parse().unwrap();
            let aware: f64 = cells[2].parse().unwrap();
            assert!((0.01..=1.0).contains(&base), "{}: baseline PST {base}", cells[0]);
            assert!((0.01..=1.0).contains(&aware), "{}: aware PST {aware}", cells[0]);
        }
    }

    #[test]
    fn exact_table3_agrees_with_sampled() {
        let sampled = table3_ibmq5(5);
        let exact = table3_ibmq5_exact();
        // per-benchmark PSTs within sampling tolerance
        for (s_line, e_line) in sampled
            .to_csv()
            .lines()
            .skip(1)
            .zip(exact.to_csv().lines().skip(1))
            .take(4)
        {
            let s: Vec<&str> = s_line.split(',').collect();
            let e: Vec<&str> = e_line.split(',').collect();
            assert_eq!(s[0], e[0]);
            let ps: f64 = s[1].parse().unwrap();
            let pe: f64 = e[1].parse().unwrap();
            assert!((ps - pe).abs() < 0.04, "{}: sampled {ps} vs exact {pe}", s[0]);
        }
    }

    #[test]
    fn topologies_table_shows_benefit_everywhere() {
        let t = ext_topologies();
        assert_eq!(t.len(), 4);
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let benefit: f64 = cells[5].trim_end_matches('x').parse().unwrap();
            assert!(benefit >= 0.95, "{}: benefit {benefit}", cells[0]);
        }
    }

    #[test]
    fn fig16_produces_all_three_workloads() {
        let t = fig16_partitioning();
        assert_eq!(t.len(), 3);
        let csv = t.to_csv();
        for name in ["alu_10", "bv_10", "qft_10"] {
            assert!(csv.contains(name), "{name} missing from fig16");
        }
    }
}
