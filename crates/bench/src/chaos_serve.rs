//! Fault-injection chaos harness for the `quvad` daemon.
//!
//! The companion of [`crate::chaos`], one layer up: where `chaos`
//! tortures the compile pipeline with corrupted calibrations, this
//! module tortures the *server* around it with hostile clients —
//! malformed frames, oversized frames, stalled half-frames, clients
//! that vanish mid-job, injected worker panics, and queue floods.
//!
//! The contract every scenario asserts (see DESIGN.md, "quvad: the
//! compilation daemon"):
//!
//! * the daemon never exits and never panics its accept loop — after
//!   any injected fault, a fresh well-formed request still gets a
//!   typed `ok` response (the *recovery probe*);
//! * every answered frame carries a typed status (`ok`, `error`,
//!   `overloaded`, `deadline_exceeded`, `shutting_down`) — nothing is
//!   silently dropped on a live connection;
//! * worker panics are absorbed: the job's client gets an `error`
//!   response and a respawned worker serves the next job.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

use quva_serve::{Server, ServerConfig, ServerHandle};

/// How long a chaos client waits for one response line. Generous:
/// CI hosts may have a single CPU.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// The record of one server chaos scenario.
#[derive(Debug, Clone)]
pub struct ServeChaosOutcome {
    /// Scenario name, as listed by [`serve_scenarios`].
    pub name: &'static str,
    /// Response lines received while the fault was being injected
    /// (order matches the injected frames; concurrent scenarios sort
    /// by status for determinism).
    pub fault_responses: Vec<String>,
    /// The response to the well-formed probe sent *after* the fault.
    pub probe_response: String,
    /// Final daemon metrics JSON, after graceful drain.
    pub final_metrics: String,
}

impl ServeChaosOutcome {
    /// Whether the daemon answered the post-fault probe with `ok` —
    /// the headline recovery property.
    pub fn recovered(&self) -> bool {
        self.probe_response.contains("\"status\":\"ok\"")
    }

    /// Reads one counter out of the final metrics JSON.
    pub fn metric(&self, name: &str) -> u64 {
        quva_obs::parse_json(&self.final_metrics)
            .ok()
            .and_then(|doc| doc.get(name).and_then(|v| v.as_f64()))
            .map_or(0, |v| v as u64)
    }
}

/// The named server fault scenarios the robustness tests walk.
pub fn serve_scenarios() -> Vec<&'static str> {
    vec![
        "malformed-frame",
        "oversized-frame",
        "slow-loris",
        "disconnect-mid-job",
        "worker-panic",
        "queue-flood",
        "dump-storm",
    ]
}

/// Runs one named scenario against a fresh in-process daemon.
///
/// # Errors
///
/// Returns `Err` on unknown names or when the daemon (or a chaos
/// client) hits an I/O failure the scenario does not inject on
/// purpose. Injected faults are *data* in the returned outcome, never
/// errors.
pub fn run_serve_chaos(name: &str) -> Result<ServeChaosOutcome, String> {
    match name {
        "malformed-frame" => malformed_frame(),
        "oversized-frame" => oversized_frame(),
        "slow-loris" => slow_loris(),
        "disconnect-mid-job" => disconnect_mid_job(),
        "worker-panic" => worker_panic(),
        "queue-flood" => queue_flood(),
        "dump-storm" => dump_storm(),
        other => Err(format!("unknown serve chaos scenario '{other}'")),
    }
}

/// A cheap well-formed job: audit is static analysis, no Monte-Carlo.
fn probe_line(id: &str) -> String {
    format!(
        "{{\"id\":\"{id}\",\"kind\":\"audit\",\"device\":\"q5\",\"policy\":\"vqm\",\"benchmark\":\"ghz:3\"}}"
    )
}

fn spawn_server(config: ServerConfig) -> Result<(ServerHandle, String), String> {
    let handle = Server::spawn(config).map_err(|e| format!("spawn failed: {e}"))?;
    let addr = handle
        .local_addr()
        .ok_or_else(|| "server has no TCP address".to_string())?
        .to_string();
    Ok((handle, addr))
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(CLIENT_READ_TIMEOUT))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    Ok(stream)
}

/// Sends one frame and reads one response line on an existing
/// connection.
fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<String, String> {
    stream
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    read_line(reader)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, String> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Err("connection closed before a response arrived".to_string()),
        Ok(_) => Ok(line.trim_end().to_string()),
        Err(e) => Err(format!("recv: {e}")),
    }
}

fn open(addr: &str) -> Result<(TcpStream, BufReader<TcpStream>), String> {
    let stream = connect(addr)?;
    let reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    Ok((stream, reader))
}

/// Sends the recovery probe on a fresh connection, then drains the
/// daemon and returns the completed outcome.
fn finish(
    name: &'static str,
    fault_responses: Vec<String>,
    handle: ServerHandle,
    addr: &str,
) -> Result<ServeChaosOutcome, String> {
    let (mut stream, mut reader) = open(addr)?;
    let probe_response = roundtrip(&mut stream, &mut reader, &probe_line("probe"))?;
    drop((stream, reader));
    handle.shutdown();
    let final_metrics = handle.join();
    Ok(ServeChaosOutcome {
        name,
        fault_responses,
        probe_response,
        final_metrics,
    })
}

/// Garbage frames: invalid JSON, wrong types, a non-object document,
/// and a nesting bomb. Each must come back as a typed `error` on the
/// *same* connection, which stays usable.
fn malformed_frame() -> Result<ServeChaosOutcome, String> {
    let (handle, addr) = spawn_server(ServerConfig::default())?;
    let (mut stream, mut reader) = open(&addr)?;
    let bomb = "[".repeat(2_000);
    let frames = [
        "{not json at all",
        "{\"id\":\"f2\",\"kind\":42}",
        "[1,2,3]",
        "{\"id\":\"f4\",\"kind\":\"warp\"}",
        "{\"id\":\"f5\",\"kind\":\"simulate\",\"device\":\"q5\",\"benchmark\":\"ghz:3\",\"trials\":0}",
        bomb.as_str(),
    ];
    let mut fault_responses = Vec::new();
    for frame in frames {
        fault_responses.push(roundtrip(&mut stream, &mut reader, frame)?);
    }
    drop((stream, reader));
    finish("malformed-frame", fault_responses, handle, &addr)
}

/// One frame over the byte limit: the daemon answers with `error` and
/// closes that connection; a fresh connection still works.
fn oversized_frame() -> Result<ServeChaosOutcome, String> {
    let config = ServerConfig {
        max_line_bytes: 1024,
        ..ServerConfig::default()
    };
    let (handle, addr) = spawn_server(config)?;
    let (mut stream, mut reader) = open(&addr)?;
    // stream past the frame limit without ever terminating the line
    let huge = "x".repeat(4096);
    stream
        .write_all(huge.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let response = read_line(&mut reader)?;
    // the daemon hangs up after an oversized frame
    let closed = matches!(read_line(&mut reader), Err(ref e) if e.contains("closed"));
    let mut fault_responses = vec![response];
    fault_responses.push(format!("connection_closed:{closed}"));
    drop((stream, reader));
    finish("oversized-frame", fault_responses, handle, &addr)
}

/// A client that sends half a frame and stalls: the idle guard must
/// reap it with a typed error instead of pinning a connection slot
/// forever.
fn slow_loris() -> Result<ServeChaosOutcome, String> {
    let config = ServerConfig {
        idle_timeout_ms: 150,
        ..ServerConfig::default()
    };
    let (handle, addr) = spawn_server(config)?;
    let (mut stream, mut reader) = open(&addr)?;
    stream
        .write_all(b"{\"id\":\"half\",\"kind\":")
        .map_err(|e| format!("send: {e}"))?;
    // no newline, no more bytes: wait out the idle timeout
    let response = read_line(&mut reader)?;
    let fault_responses = vec![response];
    drop((stream, reader));
    finish("slow-loris", fault_responses, handle, &addr)
}

/// Clients that submit real jobs and vanish before the response: the
/// worker finishes (or sheds) the orphaned work and the daemon keeps
/// serving.
fn disconnect_mid_job() -> Result<ServeChaosOutcome, String> {
    let (handle, addr) = spawn_server(ServerConfig::default())?;
    for i in 0..3 {
        let mut stream = connect(&addr)?;
        let line = format!(
            "{{\"id\":\"ghost-{i}\",\"kind\":\"simulate\",\"device\":\"q20\",\"policy\":\"vqm\",\
             \"benchmark\":\"bv:8\",\"trials\":200000,\"seed\":{i}}}"
        );
        stream
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        drop(stream); // hang up without reading the response
    }
    finish("disconnect-mid-job", Vec::new(), handle, &addr)
}

/// An injected worker panic (the `--chaos` frame): the faulting job
/// gets a typed `error`, the worker respawns, and the next real job
/// on the same connection succeeds.
fn worker_panic() -> Result<ServeChaosOutcome, String> {
    let config = ServerConfig {
        workers: 1,
        chaos_panics: true,
        ..ServerConfig::default()
    };
    let (handle, addr) = spawn_server(config)?;
    let (mut stream, mut reader) = open(&addr)?;
    let panic_response = roundtrip(&mut stream, &mut reader, "{\"id\":\"boom\",\"kind\":\"panic\"}")?;
    // same connection, same (respawned) worker pool
    let after = roundtrip(&mut stream, &mut reader, &probe_line("after-panic"))?;
    drop((stream, reader));
    finish("worker-panic", vec![panic_response, after], handle, &addr)
}

/// Many concurrent jobs against one worker and a tiny queue: every
/// client gets a typed response (`ok` or `overloaded` with a
/// `retry_after_ms` hint), nothing hangs, nothing is dropped.
fn queue_flood() -> Result<ServeChaosOutcome, String> {
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 2,
        default_deadline_ms: 60_000,
        ..ServerConfig::default()
    };
    let (handle, addr) = spawn_server(config)?;
    let clients: Vec<_> = (0..8u64)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || -> Result<String, String> {
                let (mut stream, mut reader) = open(&addr)?;
                let line = format!(
                    "{{\"id\":\"flood-{i}\",\"kind\":\"simulate\",\"device\":\"q20\",\"policy\":\"vqm\",\
                     \"benchmark\":\"bv:8\",\"trials\":150000,\"seed\":{i},\"priority\":{}}}",
                    if i % 2 == 0 { 1 } else { 8 }
                );
                roundtrip(&mut stream, &mut reader, &line)
            })
        })
        .collect();
    let mut fault_responses = Vec::new();
    for client in clients {
        let response = client.join().map_err(|_| "flood client panicked".to_string())??;
        fault_responses.push(response);
    }
    // concurrent arrival order is nondeterministic; sort for stable reports
    fault_responses.sort();
    finish("queue-flood", fault_responses, handle, &addr)
}

/// Distinguishes concurrent dump-storm runs inside one test process.
static STORM_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Walks the dump directory and reports cap compliance and per-line
/// parseability as one synthetic fault-response line.
fn inspect_dump_dir(dir: &Path, total_cap: u64) -> String {
    let mut files = 0u64;
    let mut bytes = 0u64;
    let mut parse_ok = true;
    let mut headers_ok = true;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let Ok(text) = std::fs::read_to_string(entry.path()) else {
                parse_ok = false;
                continue;
            };
            files += 1;
            bytes += text.len() as u64;
            let mut lines = text.lines();
            let header_ok = lines
                .next()
                .and_then(|line| quva_obs::parse_json(line).ok())
                .and_then(|doc| doc.get("schema").and_then(|v| v.as_str().map(str::to_string)))
                .is_some_and(|schema| schema == quva_serve::DUMP_SCHEMA);
            headers_ok &= header_ok;
            for line in lines {
                parse_ok &= quva_obs::parse_json(line).is_ok();
            }
        }
    }
    format!(
        "dump_files:{files} dump_bytes:{bytes} within_cap:{} parse_ok:{parse_ok} headers_ok:{headers_ok}",
        bytes <= total_cap
    )
}

/// A sustained anomaly stream against tiny dump caps: a long simulate
/// pins the only worker, then a burst of 1 ms-deadline jobs all expire
/// in the queue — each expiry snapshots the flight ring into the dump
/// directory. The directory must stay under its total byte cap (rotate,
/// newest survives), every surviving dump must parse line by line, and
/// the daemon must still answer the recovery probe.
fn dump_storm() -> Result<ServeChaosOutcome, String> {
    let dump_dir = std::env::temp_dir().join(format!(
        "quva-dump-storm-{}-{}",
        std::process::id(),
        STORM_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dump_dir);
    let total_cap: u64 = 8 * 1024;
    let config = ServerConfig {
        workers: 1,
        flight_capacity: 512,
        dump_dir: Some(dump_dir.clone()),
        dump_max_file_bytes: 2 * 1024,
        dump_max_total_bytes: total_cap,
        default_deadline_ms: 60_000,
        ..ServerConfig::default()
    };
    let (handle, addr) = spawn_server(config)?;
    // the blocker occupies the single worker for the whole storm; its
    // client hangs up without reading (the daemon tolerates ghosts)
    let mut blocker = connect(&addr)?;
    blocker
        .write_all(
            b"{\"id\":\"blocker\",\"kind\":\"simulate\",\"device\":\"q5\",\"policy\":\"vqm\",\
              \"benchmark\":\"ghz:3\",\"trials\":50000000,\"seed\":1}\n",
        )
        .map_err(|e| format!("send blocker: {e}"))?;
    let (mut stream, mut reader) = open(&addr)?;
    let mut deadline_hits = 0u64;
    for i in 0..24 {
        let line = format!(
            "{{\"id\":\"storm-{i}\",\"kind\":\"audit\",\"device\":\"q5\",\"policy\":\"vqm\",\
             \"benchmark\":\"ghz:3\",\"deadline_ms\":1}}"
        );
        if roundtrip(&mut stream, &mut reader, &line)?.contains("\"status\":\"deadline_exceeded\"") {
            deadline_hits += 1;
        }
    }
    let fault_responses = vec![
        format!("deadline_hits:{deadline_hits}"),
        inspect_dump_dir(&dump_dir, total_cap),
    ];
    drop((stream, reader));
    drop(blocker);
    let outcome = finish("dump-storm", fault_responses, handle, &addr);
    let _ = std::fs::remove_dir_all(&dump_dir);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    /// The headline property: no scenario panics the harness or the
    /// daemon, and after every fault the recovery probe answers `ok`.
    #[test]
    fn all_scenarios_recover() {
        for name in serve_scenarios() {
            let outcome = catch_unwind(|| run_serve_chaos(name))
                .unwrap_or_else(|_| panic!("scenario '{name}' panicked"))
                .unwrap_or_else(|e| panic!("scenario '{name}' failed: {e}"));
            assert!(
                outcome.recovered(),
                "scenario '{name}' did not recover: probe = {}",
                outcome.probe_response
            );
        }
    }

    #[test]
    fn scenario_list_is_large_enough() {
        assert!(
            serve_scenarios().len() >= 4,
            "need at least 4 server chaos scenarios"
        );
    }

    #[test]
    fn malformed_frames_get_typed_errors() {
        let outcome = run_serve_chaos("malformed-frame").unwrap();
        assert_eq!(outcome.fault_responses.len(), 6);
        for response in &outcome.fault_responses {
            assert!(
                response.contains("\"status\":\"error\""),
                "expected a typed error, got: {response}"
            );
        }
        assert!(
            outcome.metric("malformed_frames") >= 4,
            "{}",
            outcome.final_metrics
        );
    }

    #[test]
    fn oversized_frame_errors_then_closes() {
        let outcome = run_serve_chaos("oversized-frame").unwrap();
        assert!(
            outcome.fault_responses[0].contains("\"status\":\"error\""),
            "{:?}",
            outcome.fault_responses
        );
        assert_eq!(outcome.fault_responses[1], "connection_closed:true");
    }

    #[test]
    fn slow_loris_is_reaped_with_a_typed_error() {
        let outcome = run_serve_chaos("slow-loris").unwrap();
        assert!(
            outcome.fault_responses[0].contains("\"status\":\"error\"")
                && outcome.fault_responses[0].contains("idle"),
            "{:?}",
            outcome.fault_responses
        );
    }

    #[test]
    fn worker_panic_is_absorbed_and_worker_respawns() {
        let outcome = run_serve_chaos("worker-panic").unwrap();
        assert!(
            outcome.fault_responses[0].contains("\"status\":\"error\""),
            "{:?}",
            outcome.fault_responses
        );
        assert!(
            outcome.fault_responses[1].contains("\"status\":\"ok\""),
            "job after the panic should succeed: {:?}",
            outcome.fault_responses
        );
        assert!(outcome.metric("worker_panics") >= 1, "{}", outcome.final_metrics);
        assert!(
            outcome.metric("worker_respawns") >= 1,
            "{}",
            outcome.final_metrics
        );
    }

    #[test]
    fn dump_storm_respects_caps_and_recovers() {
        let outcome = run_serve_chaos("dump-storm").unwrap();
        let hits: u64 = outcome.fault_responses[0]
            .strip_prefix("deadline_hits:")
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("malformed hit count: {:?}", outcome.fault_responses));
        assert!(
            hits >= 1,
            "storm produced no deadline anomalies: {:?}",
            outcome.fault_responses
        );
        let report = &outcome.fault_responses[1];
        let files: u64 = report
            .strip_prefix("dump_files:")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("malformed dump report: {report}"));
        assert!(files >= 1, "no dump files survived the storm: {report}");
        assert!(
            report.contains("within_cap:true"),
            "dump directory outgrew its cap: {report}"
        );
        assert!(
            report.contains("parse_ok:true"),
            "a dump line failed to parse: {report}"
        );
        assert!(
            report.contains("headers_ok:true"),
            "a dump header drifted from schema: {report}"
        );
        assert!(
            outcome.recovered(),
            "probe after the storm: {}",
            outcome.probe_response
        );
    }

    #[test]
    fn queue_flood_answers_every_client_with_a_typed_status() {
        let outcome = run_serve_chaos("queue-flood").unwrap();
        assert_eq!(outcome.fault_responses.len(), 8);
        for response in &outcome.fault_responses {
            let typed = response.contains("\"status\":\"ok\"")
                || response.contains("\"status\":\"overloaded\"")
                || response.contains("\"status\":\"deadline_exceeded\"");
            assert!(typed, "untyped flood response: {response}");
        }
        // with one worker and a queue of two, eight concurrent jobs
        // cannot all be admitted
        let overloaded = outcome
            .fault_responses
            .iter()
            .filter(|r| r.contains("\"status\":\"overloaded\""))
            .count();
        assert!(overloaded >= 1, "{:#?}", outcome.fault_responses);
        for response in outcome
            .fault_responses
            .iter()
            .filter(|r| r.contains("\"status\":\"overloaded\""))
        {
            assert!(response.contains("\"retry_after_ms\""), "{response}");
        }
    }
}
