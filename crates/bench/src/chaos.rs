//! Fault-injection chaos harness for the compile pipeline.
//!
//! The pipeline (allocate → route → compile → verify → simulate) must
//! *degrade*,
//! never panic, under calibration faults: dead links, NaN or negative
//! fields, error rates at or above one, spiked (valid but terrible)
//! links, inverted coherence times, stale snapshots, and oversized
//! programs. A [`FaultPlan`] describes a seeded combination of such
//! faults; [`run_chaos`] drives the whole pipeline under it and records
//! the outcome of every stage as data — a typed error or a success,
//! nothing in between.
//!
//! Degradation contract exercised here (see DESIGN.md, "Failure modes &
//! degradation policy"):
//!
//! * raw calibration faults are repaired by [`SanitizePolicy::Clamp`]
//!   before the device is built (the CLI's `--lenient` path);
//! * dead links route around, or surface as
//!   [`quva::CompileError::Disconnected`] / [`quva::RouteError`] when
//!   they split the coupling graph;
//! * oversized programs surface as allocation errors;
//! * the simulator rejects unrouted circuits with a typed
//!   [`quva_sim::SimError`].

use std::fmt;

use quva::{MappingPolicy, Router};
use quva_benchmarks::ghz;
use quva_circuit::{Gate, PhysQubit};
use quva_device::{
    CalField, CalibrationGenerator, Device, RawCalibration, SanitizePolicy, Topology, VariationProfile,
};
use quva_sim::{monte_carlo_pst_with, CoherenceModel, McEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Disable the `nth` coupling link (modulo the link count).
    DropLink {
        /// Link index to kill (taken modulo the device's link count).
        nth: usize,
    },
    /// Disable every link incident to one qubit, cutting it off.
    IsolateQubit {
        /// The qubit to isolate (modulo the qubit count).
        qubit: usize,
    },
    /// Overwrite one calibration entry with NaN.
    NanField {
        /// Which table.
        field: CalField,
        /// Entry index (modulo the table length).
        index: usize,
    },
    /// Overwrite one error-rate entry with a negative value.
    NegativeRate {
        /// Which error table.
        field: CalField,
        /// Entry index (modulo the table length).
        index: usize,
    },
    /// Overwrite one 2Q error rate with a value ≥ 1 (certain failure).
    SuperUnityRate {
        /// Link index (modulo the link count).
        index: usize,
    },
    /// Spike one 2Q error rate to a *valid* but terrible value ≥ 0.5.
    SpikeLinkError {
        /// Link index (modulo the link count).
        index: usize,
        /// The spiked rate, clamped into `[0.5, 1)`.
        rate: f64,
    },
    /// Invert one qubit's coherence times (T2 far above 2·T1).
    InvertCoherence {
        /// Qubit index (modulo the qubit count).
        qubit: usize,
    },
    /// Compile against a snapshot `days` older than the freshest one.
    StaleSnapshot {
        /// Age of the snapshot in days.
        days: usize,
    },
    /// Make the program `extra` qubits larger than the device.
    OversizedCircuit {
        /// Qubits beyond the device size.
        extra: usize,
    },
    /// Configure a broken pass pipeline (route without allocate). The
    /// contract checker must refuse it with a typed
    /// [`quva::CompileError::Contract`] before any pass executes; the
    /// run then proceeds with the correct pipeline as the recovery
    /// probe. Never drawn by [`FaultPlan::generate`] — it is a
    /// configuration fault, not a calibration one.
    MisconfiguredPipeline,
}

/// A seeded combination of faults to inject into one pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the base calibration and the simulator.
    pub seed: u64,
    /// The faults, applied in order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Generates a random plan of 1–4 faults from a seed. The same seed
    /// always yields the same plan.
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_c0de);
        let count = rng.random_range(1..=4usize);
        let faults = (0..count).map(|_| random_fault(&mut rng)).collect();
        FaultPlan { seed, faults }
    }
}

fn random_fault(rng: &mut StdRng) -> Fault {
    let fields = [
        CalField::T1,
        CalField::T2,
        CalField::Err1q,
        CalField::ErrReadout,
        CalField::Err2q,
    ];
    match rng.random_range(0..9u32) {
        0 => Fault::DropLink {
            nth: rng.random_range(0..64usize),
        },
        1 => Fault::IsolateQubit {
            qubit: rng.random_range(0..32usize),
        },
        2 => Fault::NanField {
            field: fields[rng.random_range(0..5usize)],
            index: rng.random_range(0..64usize),
        },
        3 => Fault::NegativeRate {
            field: [CalField::Err1q, CalField::ErrReadout, CalField::Err2q][rng.random_range(0..3usize)],
            index: rng.random_range(0..64usize),
        },
        4 => Fault::SuperUnityRate {
            index: rng.random_range(0..64usize),
        },
        5 => Fault::SpikeLinkError {
            index: rng.random_range(0..64usize),
            rate: 0.5 + rng.random_range(0..45u32) as f64 / 100.0,
        },
        6 => Fault::InvertCoherence {
            qubit: rng.random_range(0..32usize),
        },
        7 => Fault::StaleSnapshot {
            days: rng.random_range(1..60usize),
        },
        _ => Fault::OversizedCircuit {
            extra: rng.random_range(1..8usize),
        },
    }
}

/// The outcome of one pipeline stage: `Ok` carries a short summary,
/// `Err` the typed error's message.
#[derive(Debug, Clone, PartialEq)]
pub struct StageResult {
    /// Stage name: `sanitize`, `contract`, `allocate`, `route`,
    /// `compile`, `verify`, or `simulate`.
    pub stage: &'static str,
    /// What happened.
    pub outcome: Result<String, String>,
}

/// The full record of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// The plan that was injected.
    pub plan: FaultPlan,
    /// Per-stage outcomes, in pipeline order. Stages after a hard
    /// failure are skipped (not recorded).
    pub stages: Vec<StageResult>,
    /// Number of calibration issues the sanitizer repaired.
    pub repaired_fields: usize,
}

impl ChaosRun {
    /// Whether every recorded stage succeeded.
    pub fn fully_succeeded(&self) -> bool {
        self.stages.iter().all(|s| s.outcome.is_ok())
    }

    /// The outcome of a named stage, if it was reached.
    pub fn stage(&self, name: &str) -> Option<&StageResult> {
        self.stages.iter().find(|s| s.stage == name)
    }
}

impl fmt::Display for ChaosRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos seed {} with {} fault(s):",
            self.plan.seed,
            self.plan.faults.len()
        )?;
        for s in &self.stages {
            match &s.outcome {
                Ok(msg) => writeln!(f, "  {:<9} ok   {msg}", s.stage)?,
                Err(msg) => writeln!(f, "  {:<9} ERR  {msg}", s.stage)?,
            }
        }
        Ok(())
    }
}

/// Runs the whole pipeline under a fault plan with one mapping policy.
///
/// Every stage ends in a typed success or a typed error; this function
/// never panics for any plan (the property the chaos tests assert).
pub fn run_chaos(plan: &FaultPlan, policy: MappingPolicy) -> ChaosRun {
    let topo = Topology::ibm_q20_tokyo();
    let mut stages = Vec::new();

    // base snapshot, aged by the largest StaleSnapshot fault
    let stale_days = plan
        .faults
        .iter()
        .filter_map(|f| match f {
            Fault::StaleSnapshot { days } => Some(*days),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut generator = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), plan.seed);
    let series = generator.daily_series(&topo, stale_days + 1);
    let base = &series[0]; // oldest snapshot: stale by `stale_days` days

    // corrupt the raw tables
    let mut raw = RawCalibration::from(base);
    for fault in &plan.faults {
        apply_calibration_fault(&mut raw, *fault, &topo);
    }

    // sanitize leniently (the CLI's default): faults become repairs
    let (cal, report) = match raw.sanitize(&topo, SanitizePolicy::Clamp, None) {
        Ok(pair) => pair,
        Err(rejected) => {
            stages.push(StageResult {
                stage: "sanitize",
                outcome: Err(rejected.to_string()),
            });
            return ChaosRun {
                plan: plan.clone(),
                stages,
                repaired_fields: 0,
            };
        }
    };
    let repaired_fields = report.repaired();
    stages.push(StageResult {
        stage: "sanitize",
        outcome: Ok(format!("{repaired_fields} field(s) repaired")),
    });

    // build the device and kill links
    let mut device = match Device::from_parts(topo, cal) {
        Ok(d) => d,
        Err(e) => {
            stages.push(StageResult {
                stage: "sanitize",
                outcome: Err(e.to_string()),
            });
            return ChaosRun {
                plan: plan.clone(),
                stages,
                repaired_fields,
            };
        }
    };
    for fault in &plan.faults {
        apply_link_fault(&mut device, *fault);
    }

    // program: a GHZ chain touching every requested qubit, so a split
    // device cannot host it without a cross-component interaction
    let extra = plan
        .faults
        .iter()
        .filter_map(|f| match f {
            Fault::OversizedCircuit { extra } => Some(*extra),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let circuit = ghz(device.num_qubits() + extra);

    // stage: contract — a misconfigured pass pipeline must be refused
    // by the static contract check, with a typed error and no partial
    // compile; every later stage is then the recovery probe (the
    // correctly-configured pipeline must still work)
    if plan.faults.contains(&Fault::MisconfiguredPipeline) {
        let broken = quva::Pipeline::new().with_pass(quva::pipeline::RoutePass {
            metric: policy.routing,
        });
        let outcome = match broken.compile(&circuit, &device) {
            Err(quva::CompileError::Contract(err)) => Ok(format!(
                "refused before any pass ran ({} violation(s))",
                err.violations().len()
            )),
            Err(other) => Err(format!("expected a contract refusal, got: {other}")),
            Ok(_) => Err("misconfigured pipeline produced a compile".to_string()),
        };
        stages.push(StageResult {
            stage: "contract",
            outcome,
        });
    }

    // stage: allocate
    let mapping = policy.allocation.allocate(&circuit, &device);
    stages.push(StageResult {
        stage: "allocate",
        outcome: mapping
            .as_ref()
            .map(|m| format!("{} qubits placed", m.num_prog()))
            .map_err(Clone::clone),
    });

    // stage: route — plan a movement for the first separated CNOT
    if let Ok(mapping) = &mapping {
        let router = Router::new(&device, policy.routing);
        let pair = circuit.iter().find_map(|g| match g {
            Gate::Cnot { control, target } => {
                let (pa, pb) = (mapping.phys_of(*control), mapping.phys_of(*target));
                (!device.has_active_link(pa, pb)).then_some((pa, pb))
            }
            _ => None,
        });
        let outcome = match pair {
            Some((pa, pb)) => router
                .plan(pa, pb)
                .map(|p| format!("{} swap(s) {pa}->{pb}", p.swap_count()))
                .map_err(|e| e.to_string()),
            None => Ok("all pairs already adjacent".to_string()),
        };
        stages.push(StageResult {
            stage: "route",
            outcome,
        });
    }

    // stage: compile
    let compiled = policy.compile(&circuit, &device);
    stages.push(StageResult {
        stage: "compile",
        outcome: compiled
            .as_ref()
            .map(|c| format!("{} inserted swap(s)", c.inserted_swaps()))
            .map_err(|e| e.to_string()),
    });

    // stage: verify — whatever survives compilation must also pass
    // static verification, faults or not
    if let Ok(compiled) = &compiled {
        let report = quva_analysis::verify_compiled(&circuit, &device, compiled);
        let outcome = if report.is_clean() {
            Ok(format!("clean ({} warning(s))", report.warning_count()))
        } else {
            Err(report.render_text())
        };
        stages.push(StageResult {
            stage: "verify",
            outcome,
        });
    }

    // stage: simulate — the parallel engine is part of the pipeline
    // under test; its estimate is thread-count-independent, so chaos
    // reports stay comparable across hosts
    if let Ok(compiled) = &compiled {
        let outcome = monte_carlo_pst_with(
            &device,
            compiled.physical(),
            500,
            plan.seed,
            CoherenceModel::IdleWindow,
            McEngine::auto(),
        )
        .map(|r| format!("PST {:.4}", r.pst))
        .map_err(|e| e.to_string());
        stages.push(StageResult {
            stage: "simulate",
            outcome,
        });
    }

    ChaosRun {
        plan: plan.clone(),
        stages,
        repaired_fields,
    }
}

fn table_of(raw: &mut RawCalibration, field: CalField) -> &mut Vec<f64> {
    match field {
        CalField::T1 => &mut raw.t1_us,
        CalField::T2 => &mut raw.t2_us,
        CalField::Err1q => &mut raw.err_1q,
        CalField::ErrReadout => &mut raw.err_readout,
        CalField::Err2q => &mut raw.err_2q,
    }
}

fn apply_calibration_fault(raw: &mut RawCalibration, fault: Fault, topo: &Topology) {
    let nq = topo.num_qubits();
    let nl = topo.num_links();
    match fault {
        Fault::NanField { field, index } => {
            let t = table_of(raw, field);
            if !t.is_empty() {
                let i = index % t.len();
                t[i] = f64::NAN;
            }
        }
        Fault::NegativeRate { field, index } => {
            let t = table_of(raw, field);
            if !t.is_empty() {
                let i = index % t.len();
                t[i] = -0.25;
            }
        }
        Fault::SuperUnityRate { index } => {
            if nl > 0 {
                raw.err_2q[index % nl] = 1.5;
            }
        }
        Fault::SpikeLinkError { index, rate } => {
            if nl > 0 {
                raw.err_2q[index % nl] = rate.clamp(0.5, 1.0 - 1e-6);
            }
        }
        Fault::InvertCoherence { qubit } => {
            let q = qubit % nq;
            raw.t2_us[q] = raw.t1_us[q] * 4.0;
        }
        Fault::DropLink { .. }
        | Fault::IsolateQubit { .. }
        | Fault::StaleSnapshot { .. }
        | Fault::OversizedCircuit { .. }
        | Fault::MisconfiguredPipeline => {}
    }
}

fn apply_link_fault(device: &mut Device, fault: Fault) {
    match fault {
        Fault::DropLink { nth } => {
            let links = device.topology().links();
            if !links.is_empty() {
                let link = links[nth % links.len()];
                device.disable_link(link.low(), link.high());
            }
        }
        Fault::IsolateQubit { qubit } => {
            let q = PhysQubit((qubit % device.num_qubits()) as u32);
            for nb in device.topology().neighbors(q) {
                device.disable_link(q, nb);
            }
        }
        _ => {}
    }
}

/// The named fault scenarios the robustness tests walk: at least one
/// per fault kind plus combined stress cases.
pub fn scenarios() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "dead-link",
            FaultPlan {
                seed: 1,
                faults: vec![Fault::DropLink { nth: 3 }],
            },
        ),
        (
            "isolated-qubit",
            FaultPlan {
                seed: 2,
                faults: vec![Fault::IsolateQubit { qubit: 7 }],
            },
        ),
        (
            "split-device",
            FaultPlan {
                seed: 3,
                faults: (0..10).map(|q| Fault::IsolateQubit { qubit: 2 * q }).collect(),
            },
        ),
        (
            "nan-2q-error",
            FaultPlan {
                seed: 4,
                faults: vec![Fault::NanField {
                    field: CalField::Err2q,
                    index: 5,
                }],
            },
        ),
        (
            "nan-coherence",
            FaultPlan {
                seed: 5,
                faults: vec![Fault::NanField {
                    field: CalField::T1,
                    index: 0,
                }],
            },
        ),
        (
            "negative-readout",
            FaultPlan {
                seed: 6,
                faults: vec![Fault::NegativeRate {
                    field: CalField::ErrReadout,
                    index: 2,
                }],
            },
        ),
        (
            "super-unity-2q",
            FaultPlan {
                seed: 7,
                faults: vec![Fault::SuperUnityRate { index: 4 }],
            },
        ),
        (
            "spiked-weak-link",
            FaultPlan {
                seed: 8,
                faults: vec![Fault::SpikeLinkError { index: 0, rate: 0.6 }],
            },
        ),
        (
            "inverted-coherence",
            FaultPlan {
                seed: 9,
                faults: vec![Fault::InvertCoherence { qubit: 3 }],
            },
        ),
        (
            "stale-snapshot",
            FaultPlan {
                seed: 10,
                faults: vec![Fault::StaleSnapshot { days: 45 }],
            },
        ),
        (
            "oversized-circuit",
            FaultPlan {
                seed: 11,
                faults: vec![Fault::OversizedCircuit { extra: 4 }],
            },
        ),
        (
            "pipeline-misconfig",
            FaultPlan {
                seed: 13,
                faults: vec![Fault::MisconfiguredPipeline],
            },
        ),
        (
            "kitchen-sink",
            FaultPlan {
                seed: 12,
                faults: vec![
                    Fault::DropLink { nth: 1 },
                    Fault::NanField {
                        field: CalField::Err2q,
                        index: 9,
                    },
                    Fault::SpikeLinkError { index: 2, rate: 0.9 },
                    Fault::InvertCoherence { qubit: 14 },
                    Fault::StaleSnapshot { days: 10 },
                ],
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn policies() -> Vec<MappingPolicy> {
        vec![
            MappingPolicy::baseline(),
            MappingPolicy::vqm(),
            MappingPolicy::vqm_hop_limited(),
            MappingPolicy::vqa_vqm(),
            MappingPolicy::native(5),
        ]
    }

    /// The headline property: no scenario panics any stage of the
    /// pipeline under any policy — unwinds are caught and failed.
    #[test]
    fn named_scenarios_never_panic() {
        for (name, plan) in scenarios() {
            for policy in policies() {
                let result = catch_unwind(AssertUnwindSafe(|| run_chaos(&plan, policy)));
                let run =
                    result.unwrap_or_else(|_| panic!("scenario '{name}' panicked under {}", policy.name()));
                assert!(!run.stages.is_empty(), "scenario '{name}' recorded no stages");
            }
        }
    }

    #[test]
    fn scenario_list_is_large_enough() {
        assert!(scenarios().len() >= 8, "need at least 8 chaos scenarios");
    }

    #[test]
    fn clean_run_succeeds_end_to_end() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![],
        };
        let run = run_chaos(&plan, MappingPolicy::vqa_vqm());
        assert!(run.fully_succeeded(), "{run}");
        assert_eq!(run.repaired_fields, 0);
        assert!(run.stage("simulate").is_some(), "{run}");
    }

    #[test]
    fn dead_link_routes_around() {
        let (_, plan) = scenarios().swap_remove(0);
        let run = run_chaos(&plan, MappingPolicy::vqm());
        assert!(run.fully_succeeded(), "{run}");
    }

    #[test]
    fn split_device_is_typed_error_not_panic() {
        let plan = scenarios()
            .into_iter()
            .find(|(n, _)| *n == "split-device")
            .map(|(_, p)| p)
            .unwrap();
        for policy in policies() {
            let run = run_chaos(&plan, policy);
            // isolating half the qubits leaves no 20-qubit connected
            // region: allocation or compilation must fail, cleanly
            let compile = run.stage("compile").unwrap();
            assert!(compile.outcome.is_err(), "{}: {run}", policy.name());
        }
    }

    #[test]
    fn oversized_circuit_fails_at_allocation() {
        let plan = scenarios()
            .into_iter()
            .find(|(n, _)| *n == "oversized-circuit")
            .map(|(_, p)| p)
            .unwrap();
        let run = run_chaos(&plan, MappingPolicy::baseline());
        let alloc = run.stage("allocate").unwrap();
        let err = alloc.outcome.as_ref().unwrap_err();
        assert!(err.contains("qubits"), "{run}");
        // route/simulate are skipped, compile reports the same failure
        assert!(run.stage("compile").unwrap().outcome.is_err(), "{run}");
    }

    #[test]
    fn corrupted_fields_are_repaired_then_compile_succeeds() {
        for name in [
            "nan-2q-error",
            "nan-coherence",
            "negative-readout",
            "super-unity-2q",
        ] {
            let plan = scenarios()
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, p)| p)
                .unwrap();
            let run = run_chaos(&plan, MappingPolicy::vqa_vqm());
            assert!(run.repaired_fields >= 1, "{name}: no repairs recorded\n{run}");
            assert!(run.fully_succeeded(), "{name}: {run}");
        }
    }

    #[test]
    fn spiked_link_still_compiles_and_vqm_avoids_it() {
        let plan = FaultPlan {
            seed: 8,
            faults: vec![Fault::SpikeLinkError { index: 0, rate: 0.6 }],
        };
        let run = run_chaos(&plan, MappingPolicy::vqm());
        assert!(run.fully_succeeded(), "{run}");
    }

    /// Whenever compilation survives a fault plan, the compiled output
    /// must still pass static verification: faults may abort the
    /// pipeline, never corrupt what it emits.
    #[test]
    fn surviving_compiles_verify_clean() {
        for (name, plan) in scenarios() {
            for policy in policies() {
                let run = run_chaos(&plan, policy);
                if run.stage("compile").is_some_and(|s| s.outcome.is_ok()) {
                    let verify = run.stage("verify").unwrap_or_else(|| {
                        panic!(
                            "scenario '{name}' compiled but never verified under {}",
                            policy.name()
                        )
                    });
                    assert!(
                        verify.outcome.is_ok(),
                        "scenario '{name}' under {}: {run}",
                        policy.name()
                    );
                }
            }
        }
    }

    /// The contract-rejected pipeline is refused before any pass
    /// executes — typed error, no partial compile — and the recovery
    /// probe (the correct pipeline) passes every later stage.
    #[test]
    fn pipeline_misconfig_is_refused_before_any_pass_runs() {
        let plan = scenarios()
            .into_iter()
            .find(|(n, _)| *n == "pipeline-misconfig")
            .map(|(_, p)| p)
            .unwrap();
        for policy in policies() {
            let run = run_chaos(&plan, policy);
            let contract = run
                .stage("contract")
                .unwrap_or_else(|| panic!("no contract stage under {}: {run}", policy.name()));
            let msg = contract
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: refusal not typed: {e}\n{run}", policy.name()));
            assert!(msg.contains("refused before any pass ran"), "{run}");
            // the refusal precedes allocation — nothing executed first
            let pos = |name| run.stages.iter().position(|s| s.stage == name);
            assert!(pos("contract").unwrap() < pos("allocate").unwrap(), "{run}");
            // recovery probe: the correct pipeline passes end to end
            assert!(run.fully_succeeded(), "{}: {run}", policy.name());
        }
    }

    #[test]
    fn generated_plans_are_deterministic() {
        for seed in [0u64, 1, 17, 999] {
            assert_eq!(FaultPlan::generate(seed), FaultPlan::generate(seed));
        }
        assert_ne!(FaultPlan::generate(1), FaultPlan::generate(2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random fault plans across seeds: the pipeline never panics
        /// under any policy, for any generated combination of faults.
        #[test]
        fn random_fault_plans_never_panic(seed in 0u64..4096) {
            let plan = FaultPlan::generate(seed);
            for policy in [MappingPolicy::baseline(), MappingPolicy::vqa_vqm()] {
                let result = catch_unwind(AssertUnwindSafe(|| run_chaos(&plan, policy)));
                let run = result.unwrap_or_else(|_| {
                    panic!("seed {seed} plan {:?} panicked under {}", plan.faults, policy.name())
                });
                prop_assert!(!run.stages.is_empty());
            }
        }
    }
}
