//! Experiments reproducing the policy evaluation on IBM-Q20
//! (Table 1, Fig. 12, Fig. 13, Fig. 14, Table 2).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use quva::MappingPolicy;
use quva_analysis::{esp_interval, EspConfig, EspInterval};
use quva_benchmarks::{table1_suite, Benchmark};
use quva_device::{CalibrationGenerator, Device, Topology, VariationProfile};
use quva_sim::{monte_carlo_pst_with, CoherenceModel, McEngine, McEstimate, McKernel};
use quva_stats::{fmt3, fmt_ratio, mean, Table};

/// Memoized (policy, circuit, device) → PST evaluations.
///
/// The figure and chaos suites re-evaluate the same compile + profile
/// combination many times (fig12 and fig13 share baseline/VQM rows;
/// `run_all` chains both after table 1), and compilation dominates each
/// evaluation. The device key is [`Device::fingerprint`] and the
/// workload key is the structural `Circuit::fingerprint` (display
/// names like "rnd-SD" omit generator seeds) — any calibration,
/// topology, dead-link, or circuit change produces a different key, so
/// daily-series and error-scaling sweeps never alias.
fn pst_cache() -> &'static Mutex<HashMap<PstKey, f64>> {
    static CACHE: OnceLock<Mutex<HashMap<PstKey, f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// (device fingerprint, policy debug form, circuit fingerprint).
type PstKey = (u64, String, u64);

/// [`PstKey`] extended with the sampling configuration: trials, seed,
/// and the trial kernel. The kernel is part of the key because the
/// scalar oracle and the bit-parallel kernel are distinct
/// deterministic samples — memoizing across kernels would hide
/// exactly the divergence the cross-validation suite exists to catch.
type McKey = (u64, String, u64, u64, u64, McKernel);

/// Memoized (policy, circuit, device, trials, seed, kernel) →
/// Monte-Carlo estimate. The cross-validation suite evaluates the
/// same (suite × policy) grid once per kernel; the repeated
/// compile + profile work dominates, so repeats are a map lookup.
fn mc_cache() -> &'static Mutex<HashMap<McKey, McEstimate>> {
    static CACHE: OnceLock<Mutex<HashMap<McKey, McEstimate>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Monte-Carlo PST estimate of `benchmark` compiled with `policy` on
/// `device`, sampled with `kernel` — memoized process-wide like
/// [`pst_of`], with the sampling configuration (trials, seed, kernel)
/// folded into the key.
///
/// Runs on the sequential engine: estimates are thread-count
/// independent by the chunk-merge contract, so a cache keyed without
/// a thread count is sound.
///
/// # Panics
///
/// Panics if compilation fails — the experiment configurations are all
/// known-compilable.
pub fn mc_pst_of(
    policy: MappingPolicy,
    benchmark: &Benchmark,
    device: &Device,
    trials: u64,
    seed: u64,
    kernel: McKernel,
) -> McEstimate {
    let key = (
        device.fingerprint(),
        format!("{policy:?}"),
        benchmark.circuit().fingerprint(),
        trials,
        seed,
        kernel,
    );
    if let Ok(cache) = mc_cache().lock() {
        if let Some(&est) = cache.get(&key) {
            quva_obs::counter("cache.mc.hit", 1);
            return est;
        }
    }
    quva_obs::counter("cache.mc.miss", 1);
    let compiled = policy
        .compile(benchmark.circuit(), device)
        .unwrap_or_else(|e| panic!("{} failed to compile {}: {e}", policy.name(), benchmark.name()));
    let est = monte_carlo_pst_with(
        device,
        compiled.physical(),
        trials,
        seed,
        CoherenceModel::Disabled,
        McEngine::sequential().with_kernel(kernel),
    )
    .unwrap_or_else(|e| panic!("compiled circuits are routed: {e}"));
    if let Ok(mut cache) = mc_cache().lock() {
        cache.insert(key, est);
        quva_obs::counter("cache.mc.insert", 1);
    }
    est
}

/// Memoized (policy, circuit, device) → static ESP interval, keyed
/// identically to [`pst_cache`] so the two caches age together. The
/// audit tooling evaluates the same configurations the PST experiments
/// do; memoizing the static bound makes `static ESP + MC` comparisons
/// one compile instead of two.
fn esp_cache() -> &'static Mutex<HashMap<PstKey, EspInterval>> {
    static CACHE: OnceLock<Mutex<HashMap<PstKey, EspInterval>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Static ESP interval of `benchmark` compiled with `policy` on
/// `device`, under the default calibration-drift configuration.
///
/// The point estimate equals [`pst_of`] exactly (both are the analytic
/// product of per-operation success probabilities under the gate +
/// readout model); the `[lo, hi]` bound widens every error rate by the
/// drift uncertainty. Results are cached process-wide next to the PST
/// memo, keyed by `Device::fingerprint`/`Circuit::fingerprint`.
///
/// # Panics
///
/// Panics if compilation fails — the experiment configurations are all
/// known-compilable.
pub fn esp_interval_of(policy: MappingPolicy, benchmark: &Benchmark, device: &Device) -> EspInterval {
    let key = (
        device.fingerprint(),
        format!("{policy:?}"),
        benchmark.circuit().fingerprint(),
    );
    if let Ok(cache) = esp_cache().lock() {
        if let Some(&esp) = cache.get(&key) {
            quva_obs::counter("cache.esp.hit", 1);
            return esp;
        }
    }
    quva_obs::counter("cache.esp.miss", 1);
    let compiled = policy
        .compile(benchmark.circuit(), device)
        .unwrap_or_else(|e| panic!("{} failed to compile {}: {e}", policy.name(), benchmark.name()));
    let esp = esp_interval(device, compiled.physical(), &EspConfig::default());
    if let Ok(mut cache) = esp_cache().lock() {
        cache.insert(key, esp);
        quva_obs::counter("cache.esp.insert", 1);
    }
    esp
}

/// Analytic PST of `benchmark` compiled with `policy` on `device`
/// (exact value of the paper's 1M-trial Monte-Carlo estimate).
///
/// Evaluated under the gate + readout error model (coherence disabled):
/// the paper finds gate errors dominate coherence by an order of
/// magnitude (§4.4), and its policy comparisons reflect gate errors
/// only. The coherence decomposition is reported separately by
/// [`coherence_ratio`].
///
/// Results are cached process-wide per (policy, benchmark, device
/// fingerprint); repeated evaluations of the same configuration are a
/// map lookup.
///
/// # Panics
///
/// Panics if compilation fails — the experiment configurations are all
/// known-compilable.
pub fn pst_of(policy: MappingPolicy, benchmark: &Benchmark, device: &Device) -> f64 {
    // The debug form of the policy is its full configuration (the
    // display name collapses e.g. every native seed to "native").
    let key = (
        device.fingerprint(),
        format!("{policy:?}"),
        benchmark.circuit().fingerprint(),
    );
    if let Ok(cache) = pst_cache().lock() {
        if let Some(&pst) = cache.get(&key) {
            quva_obs::counter("cache.pst.hit", 1);
            return pst;
        }
    }
    quva_obs::counter("cache.pst.miss", 1);
    let compiled = policy
        .compile(benchmark.circuit(), device)
        .unwrap_or_else(|e| panic!("{} failed to compile {}: {e}", policy.name(), benchmark.name()));
    let pst = compiled
        .analytic_pst(device, CoherenceModel::Disabled)
        .unwrap_or_else(|e| panic!("compiled circuits are routed: {e}"))
        .pst;
    if let Ok(mut cache) = pst_cache().lock() {
        cache.insert(key, pst);
        quva_obs::counter("cache.pst.insert", 1);
    }
    pst
}

/// The §4.4 dominance claim: the ratio of gate to coherence failure
/// weight for a baseline-compiled benchmark (the paper quotes 16x for
/// bv-20).
pub fn coherence_ratio(benchmark: &Benchmark, device: &Device) -> f64 {
    let compiled = MappingPolicy::baseline()
        .compile(benchmark.circuit(), device)
        .unwrap_or_else(|e| panic!("benchmark compiles on the evaluation device: {e}"));
    compiled
        .analytic_pst(device, CoherenceModel::IdleWindow)
        .unwrap_or_else(|e| panic!("compiled circuits are routed: {e}"))
        .gate_to_coherence_ratio()
}

/// Table 1: benchmark characteristics — qubit counts, instruction
/// counts, and the SWAPs the baseline compiler inserts on IBM-Q20.
pub fn table1_benchmarks() -> Table {
    let device = Device::ibm_q20();
    let mut table = Table::new(["benchmark", "qubits", "ops", "depth", "inserted_swaps"]);
    for b in table1_suite() {
        let compiled = MappingPolicy::baseline()
            .compile(b.circuit(), &device)
            .unwrap_or_else(|e| panic!("table-1 workloads compile on Q20: {e}"));
        table.row([
            b.name().to_string(),
            b.circuit().num_qubits().to_string(),
            b.circuit().op_count().to_string(),
            b.circuit().depth().to_string(),
            compiled.inserted_swaps().to_string(),
        ]);
    }
    table
}

/// Figure 12: PST of VQM and hop-limited VQM, normalized to the
/// baseline, per Table 1 workload.
pub fn fig12_vqm() -> Table {
    let device = Device::ibm_q20();
    let mut table = Table::new([
        "benchmark",
        "baseline",
        "VQM",
        "VQM_MAH4",
        "rel_VQM",
        "rel_VQM_MAH4",
    ]);
    for b in table1_suite() {
        let base = pst_of(MappingPolicy::baseline(), &b, &device);
        let vqm = pst_of(MappingPolicy::vqm(), &b, &device);
        let mah = pst_of(MappingPolicy::vqm_hop_limited(), &b, &device);
        table.row([
            b.name().to_string(),
            fmt3(base),
            fmt3(vqm),
            fmt3(mah),
            fmt_ratio(vqm / base),
            fmt_ratio(mah / base),
        ]);
    }
    table
}

/// Number of random-allocation seeds the native-compiler comparison
/// averages (the paper evaluates 32 configurations).
pub const NATIVE_SEEDS: u64 = 32;

/// Figure 13: PST of the native compiler (32 random seeds, min/avg/max),
/// the baseline, VQM, and VQA+VQM — all normalized to the baseline.
pub fn fig13_policies() -> Table {
    let device = Device::ibm_q20();
    let mut table = Table::new([
        "benchmark",
        "native_min",
        "native_avg",
        "native_max",
        "baseline",
        "VQM",
        "VQA+VQM",
    ]);
    for b in table1_suite() {
        let base = pst_of(MappingPolicy::baseline(), &b, &device);
        let natives: Vec<f64> = (0..NATIVE_SEEDS)
            .map(|s| pst_of(MappingPolicy::native(s), &b, &device) / base)
            .collect();
        let vqm = pst_of(MappingPolicy::vqm(), &b, &device) / base;
        let vqa_vqm = pst_of(MappingPolicy::vqa_vqm(), &b, &device) / base;
        let nmin = natives.iter().copied().fold(f64::INFINITY, f64::min);
        let nmax = natives.iter().copied().fold(0.0f64, f64::max);
        table.row([
            b.name().to_string(),
            fmt3(nmin),
            fmt3(mean(&natives)),
            fmt3(nmax),
            "1.000".into(),
            fmt3(vqm),
            fmt3(vqa_vqm),
        ]);
    }
    table
}

/// Number of days in the per-day sensitivity study (§6.5).
pub const DAYS: usize = 52;

/// Figure 14: the VQA+VQM benefit for bv-16 re-evaluated against each of
/// 52 daily calibrations.
pub fn fig14_daily() -> Table {
    let topo = Topology::ibm_q20_tokyo();
    let mut gen = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 14);
    let days = gen.daily_series(&topo, DAYS);
    let bench = Benchmark::bv(16);

    let mut table = Table::new([
        "day",
        "variation_cov",
        "baseline_pst",
        "vqa_vqm_pst",
        "relative_benefit",
    ]);
    let mut benefits = Vec::with_capacity(DAYS);
    let mut covs = Vec::with_capacity(DAYS);
    for (d, cal) in days.into_iter().enumerate() {
        let cov = cal.two_qubit_cov();
        let device = Device::from_parts(topo.clone(), cal)
            .unwrap_or_else(|e| panic!("daily calibration matches topology: {e}"));
        let base = pst_of(MappingPolicy::baseline(), &bench, &device);
        let aware = pst_of(MappingPolicy::vqa_vqm(), &bench, &device);
        benefits.push(aware / base);
        covs.push(cov);
        table.row([
            d.to_string(),
            fmt3(cov),
            fmt3(base),
            fmt3(aware),
            fmt_ratio(aware / base),
        ]);
    }
    table.row([
        "average".into(),
        "".into(),
        "".into(),
        "".into(),
        fmt_ratio(mean(&benefits)),
    ]);
    // §6.5's claim quantified: benefit tracks the day's variability
    let r = quva_stats::pearson(&covs, &benefits).unwrap_or(0.0);
    table.row([
        "corr(cov,benefit)".into(),
        "".into(),
        "".into(),
        "".into(),
        fmt3(r),
    ]);
    table
}

/// Table 2: sensitivity of the VQA+VQM benefit to error-rate scaling —
/// the benefit persists (and grows with relative variation) as
/// technology improves.
pub fn table2_error_scaling() -> Table {
    let device = Device::ibm_q20();
    let bench = Benchmark::bv(16);

    let scenarios: Vec<(&str, Device)> = vec![
        ("1x, Cov-Base", device.clone()),
        (
            "10x lower, Cov-Base",
            device
                .with_calibration(device.calibration().with_errors_scaled(0.1))
                .unwrap_or_else(|e| panic!("scaling preserves shape: {e}")),
        ),
        (
            "10x lower, 2*Cov-Base",
            device
                .with_calibration(
                    device
                        .calibration()
                        .with_errors_scaled(0.1)
                        .with_two_qubit_cov_scaled(2.0),
                )
                .unwrap_or_else(|e| panic!("scaling preserves shape: {e}")),
        ),
    ];

    let mut table = Table::new(["scenario", "baseline_pst", "vqa_vqm_pst", "relative_benefit"]);
    for (name, dev) in scenarios {
        let base = pst_of(MappingPolicy::baseline(), &bench, &dev);
        let aware = pst_of(MappingPolicy::vqa_vqm(), &bench, &dev);
        table.row([name.to_string(), fmt3(base), fmt3(aware), fmt_ratio(aware / base)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ratio(cell: &str) -> f64 {
        cell.trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn pst_cache_hits_are_identical_and_keys_do_not_alias() {
        let device = Device::ibm_q20();
        let bench = Benchmark::bv(8);
        let first = pst_of(MappingPolicy::vqm(), &bench, &device);
        let cached = pst_of(MappingPolicy::vqm(), &bench, &device);
        assert_eq!(first.to_bits(), cached.to_bits());

        // same display name, different circuit: must not alias
        let rnd_a = Benchmark::rnd_sd(8, 16, 1);
        let rnd_b = Benchmark::rnd_sd(8, 16, 2);
        assert_ne!(
            pst_of(MappingPolicy::baseline(), &rnd_a, &device).to_bits(),
            pst_of(MappingPolicy::baseline(), &rnd_b, &device).to_bits(),
            "distinct rnd-SD seeds collided in the PST cache"
        );

        // same policy display name ("native"), different seed: distinct
        let n1 = pst_of(MappingPolicy::native(1), &bench, &device);
        let n2 = pst_of(MappingPolicy::native(2), &bench, &device);
        // (values could coincide by luck of the allocator, but the cache
        // must at least have evaluated both — sanity-check plausibility)
        assert!(n1 > 0.0 && n2 > 0.0);

        // recalibrated device: different key, coherent value
        let scaled = device
            .with_calibration(device.calibration().with_errors_scaled(0.5))
            .unwrap();
        assert!(pst_of(MappingPolicy::vqm(), &bench, &scaled) > first);
    }

    #[test]
    fn mc_memo_keys_on_the_kernel_and_agrees_with_the_analytic_value() {
        let device = Device::ibm_q20();
        let bench = Benchmark::bv(8);
        let trials = 50_000;
        let bp = mc_pst_of(
            MappingPolicy::vqm(),
            &bench,
            &device,
            trials,
            7,
            McKernel::BitParallel,
        );
        let cached = mc_pst_of(
            MappingPolicy::vqm(),
            &bench,
            &device,
            trials,
            7,
            McKernel::BitParallel,
        );
        assert_eq!(
            bp.pst.to_bits(),
            cached.pst.to_bits(),
            "mc memo hit must be identical"
        );

        // the scalar oracle is a distinct deterministic sample — the
        // kernel must be part of the key, not collapsed away
        let scalar = mc_pst_of(MappingPolicy::vqm(), &bench, &device, trials, 7, McKernel::Scalar);
        assert_ne!(
            scalar.successes, bp.successes,
            "kernels aliased in the MC cache (or sampled identically, which the contract forbids)"
        );

        // both estimates bracket the analytic value within ~4 SE
        let exact = pst_of(MappingPolicy::vqm(), &bench, &device);
        for est in [bp, scalar] {
            let se = (exact * (1.0 - exact) / trials as f64).sqrt();
            assert!(
                (est.pst - exact).abs() <= 4.0 * se,
                "estimate {} vs analytic {exact} beyond 4 SE ({se})",
                est.pst
            );
        }
    }

    #[test]
    fn esp_memo_agrees_with_pst_memo() {
        let device = Device::ibm_q20();
        let bench = Benchmark::bv(8);
        for policy in [MappingPolicy::baseline(), MappingPolicy::vqm()] {
            let esp = esp_interval_of(policy, &bench, &device);
            let pst = pst_of(policy, &bench, &device);
            // the static point estimate IS the analytic PST
            assert_eq!(esp.point.to_bits(), pst.to_bits(), "{}", policy.name());
            assert!(esp.lo <= pst && pst <= esp.hi);
            // cache hit returns the identical interval
            let again = esp_interval_of(policy, &bench, &device);
            assert_eq!(esp.lo.to_bits(), again.lo.to_bits());
            assert_eq!(esp.hi.to_bits(), again.hi.to_bits());
        }
    }

    #[test]
    fn table1_matches_paper_shapes() {
        let t = table1_benchmarks();
        assert_eq!(t.len(), 7);
        let csv = t.to_csv();
        // bv-20 uses the whole machine
        assert!(csv.lines().any(|l| l.starts_with("bv-20,20,")));
        // rnd-LD inserts more swaps than rnd-SD (long-distance traffic)
        let swaps = |name: &str| -> usize {
            csv.lines()
                .find(|l| l.starts_with(name))
                .unwrap()
                .split(',')
                .next_back()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(
            swaps("rnd-LD") > swaps("rnd-SD"),
            "LD {} vs SD {}",
            swaps("rnd-LD"),
            swaps("rnd-SD")
        );
    }

    #[test]
    fn fig12_vqm_never_loses() {
        let t = fig12_vqm();
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let rel = parse_ratio(cells[4]);
            assert!(rel >= 0.95, "{}: VQM rel PST {rel}", cells[0]);
        }
    }

    #[test]
    fn fig13_vqa_vqm_beats_native() {
        let t = fig13_policies();
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let native_avg: f64 = cells[2].parse().unwrap();
            let vqa_vqm: f64 = cells[6].parse().unwrap();
            assert!(
                vqa_vqm > native_avg,
                "{}: VQA+VQM {vqa_vqm} vs native {native_avg}",
                cells[0]
            );
        }
    }

    #[test]
    fn table2_benefit_grows_with_variation() {
        let t = table2_error_scaling();
        let rows: Vec<f64> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| parse_ratio(l.split(',').next_back().unwrap()))
            .collect();
        assert_eq!(rows.len(), 3);
        // doubling the CoV must not shrink the benefit
        assert!(
            rows[2] >= rows[1] * 0.95,
            "2xCov {} vs 1xCov {}",
            rows[2],
            rows[1]
        );
        // every scenario shows a benefit
        for (i, r) in rows.iter().enumerate() {
            assert!(*r >= 1.0, "scenario {i} benefit {r}");
        }
    }
}
