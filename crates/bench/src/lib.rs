//! # quva-bench — the experiment harness
//!
//! One function per paper table/figure, each returning the
//! [`quva_stats::Table`] the paper row/series corresponds to, plus
//! report binaries (`cargo run -p quva-bench --bin <id>`) that print it
//! and persist a CSV under `results/`. `--bin run_all` regenerates the
//! whole evaluation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod chaos;
pub mod chaos_serve;
pub mod characterization;
pub mod cost_check;
pub mod io;
pub mod policy_eval;
pub mod real_system;
