//! Ablation report: readout-aware allocation extension.

fn main() {
    let table = quva_bench::ablations::ablation_readout();
    quva_bench::io::report("ablation_readout", "readout-aware allocation", &table);
}
