//! Regenerates Figure 16: two weak copies vs one strong copy (STPT).

fn main() {
    let table = quva_bench::real_system::fig16_partitioning();
    quva_bench::io::report("fig16_partitioning", "STPT of partitioning choices", &table);
}
