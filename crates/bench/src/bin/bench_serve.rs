//! Machine-readable load benchmark for the `quvad` daemon: drives a
//! deterministic traffic mix (audits, small simulations, compiles,
//! with repeats that should hit the result cache) over N client
//! connections, writes `BENCH_serve.json`, and (with `--check`) gates
//! CI on latency/throughput regressions against a committed baseline.
//!
//! By default the daemon is spawned in-process on an ephemeral port;
//! `--addr HOST:PORT` points at an externally started daemon instead
//! (the CI `serve-smoke` job uses this), and `--shutdown` sends a
//! `shutdown` frame at the end so the external daemon drains.
//!
//! Clients honor backpressure: an `overloaded` response is retried
//! with the shared deterministic [`Backoff`] schedule, seeded per
//! connection, taking the server's `retry_after_ms` hint into
//! account.
//!
//! ```text
//! bench_serve [--requests N] [--conns N] [--quick] [--out PATH]
//!             [--check BASELINE] [--tolerance FRAC]
//!             [--addr HOST:PORT] [--shutdown]
//! ```
//!
//! Exit status is non-zero when `--check` finds the p99 latency more
//! than `--tolerance` (default 0.60 — CI hosts may have one CPU)
//! above the baseline, throughput below `1 - tolerance` of the
//! baseline, any request that ended without a typed `ok` response, or
//! (in-process runs only) the flight recorder costing 3% or more of
//! ping p99 armed vs disarmed — the `recorder_overhead` gate, recorded
//! in the output JSON either way.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use quva_analysis::{cost_envelope, CostModel};
use quva_bench::cost_check::{violations, CostCheck};
use quva_device::Device;
use quva_serve::{Backoff, Server, ServerConfig, ServerHandle};

/// The recorder-overhead gate: armed-vs-disarmed ping p99 must stay
/// within this fraction (the flight ring is cheap enough to leave on).
const RECORDER_OVERHEAD_LIMIT: f64 = 0.03;

struct Config {
    requests: usize,
    conns: usize,
    quick: bool,
    out: String,
    check: Option<String>,
    tolerance: f64,
    addr: Option<String>,
    shutdown: bool,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        requests: 240,
        conns: 4,
        quick: false,
        out: "BENCH_serve.json".into(),
        check: None,
        tolerance: 0.60,
        addr: None,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--requests" => {
                cfg.requests = value("--requests")
                    .parse()
                    .unwrap_or_else(|_| die("--requests expects an integer"));
            }
            "--conns" => {
                cfg.conns = value("--conns")
                    .parse()
                    .unwrap_or_else(|_| die("--conns expects an integer"));
            }
            "--quick" => {
                cfg.requests = 80;
                cfg.conns = 2;
                cfg.quick = true;
            }
            "--out" => cfg.out = value("--out"),
            "--check" => cfg.check = Some(value("--check")),
            "--tolerance" => {
                cfg.tolerance = value("--tolerance")
                    .parse()
                    .unwrap_or_else(|_| die("--tolerance expects a fraction"));
            }
            "--addr" => cfg.addr = Some(value("--addr")),
            "--shutdown" => cfg.shutdown = true,
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    if cfg.requests == 0 || cfg.conns == 0 {
        die("--requests and --conns must be positive");
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("bench_serve: {msg}");
    std::process::exit(2);
}

/// The deterministic traffic mix: request `i` always maps to the same
/// job line, and the small modulus guarantees repeats (cache hits).
fn job_line(id: &str, i: usize) -> String {
    match i % 8 {
        0..=2 => format!(
            "{{\"id\":\"{id}\",\"kind\":\"audit\",\"device\":\"q20\",\"policy\":\"vqm\",\
             \"benchmark\":\"bv:{}\"}}",
            4 + (i % 3) * 2
        ),
        3..=4 => format!(
            "{{\"id\":\"{id}\",\"kind\":\"compile\",\"device\":\"q5\",\"policy\":\"baseline\",\
             \"benchmark\":\"ghz:{}\"}}",
            3 + i % 2
        ),
        5 | 6 => format!(
            "{{\"id\":\"{id}\",\"kind\":\"simulate\",\"device\":\"q20\",\"policy\":\"vqm\",\
             \"benchmark\":\"ghz:4\",\"trials\":2000,\"seed\":{}}}",
            1 + i % 4
        ),
        _ => format!(
            "{{\"id\":\"{id}\",\"kind\":\"simulate\",\"device\":\"q5\",\"policy\":\"vqa-vqm\",\
             \"benchmark\":\"bv:4\",\"trials\":2000,\"seed\":1}}"
        ),
    }
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap_or_else(|e| die(&format!("set_read_timeout: {e}")));
    stream
}

fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<String, String> {
    stream
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(0) => Err("connection closed".to_string()),
        Ok(_) => Ok(response.trim_end().to_string()),
        Err(e) => Err(format!("recv: {e}")),
    }
}

/// Pulls `"key":<number>` out of a hand-rolled JSON line.
fn extract_f64(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[derive(Default, Clone)]
struct ClientTally {
    latencies_us: Vec<u64>,
    ok: u64,
    errors: u64,
    overloaded_retries: u64,
    deadline_exceeded: u64,
    gave_up: u64,
}

/// One client connection's share of the traffic. Latency is measured
/// end-to-end per logical request, retries included — the figure a
/// well-behaved client actually experiences.
fn run_client(addr: &str, conn: usize, conns: usize, requests: usize) -> ClientTally {
    let mut tally = ClientTally::default();
    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().unwrap_or_else(|e| die(&format!("clone: {e}"))));
    let mut backoff = Backoff::new(0xbe9c | conn as u64, 5, 200);
    for i in (conn..requests).step_by(conns) {
        let line = job_line(&format!("c{conn}-r{i}"), i);
        let start = Instant::now();
        let mut settled = false;
        for _attempt in 0..8 {
            let response = match roundtrip(&mut stream, &mut reader, &line) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("bench_serve: request c{conn}-r{i} transport error: {e}");
                    tally.errors += 1;
                    settled = true;
                    break;
                }
            };
            if response.contains("\"status\":\"ok\"") {
                tally.ok += 1;
                settled = true;
                break;
            } else if response.contains("\"status\":\"overloaded\"") {
                tally.overloaded_retries += 1;
                let hint = extract_f64(&response, "retry_after_ms").unwrap_or(0.0) as u64;
                thread::sleep(Duration::from_millis(backoff.next_delay_after_hint_ms(hint)));
            } else if response.contains("\"status\":\"deadline_exceeded\"") {
                tally.deadline_exceeded += 1;
                settled = true;
                break;
            } else {
                eprintln!("bench_serve: request c{conn}-r{i} failed: {response}");
                tally.errors += 1;
                settled = true;
                break;
            }
        }
        if !settled {
            tally.gave_up += 1;
        }
        tally.latencies_us.push(start.elapsed().as_micros() as u64);
        backoff.reset_attempts();
    }
    tally
}

/// Appends `samples` ping round-trip latencies (in nanoseconds —
/// microsecond ticks would quantize a sub-microsecond ring cost into a
/// fake 8% delta) to `sink`, on one warm connection.
fn ping_batch_ns(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    samples: usize,
    sink: &mut Vec<u64>,
) -> Result<(), String> {
    for i in 0..samples {
        let line = format!("{{\"id\":\"ov-{i}\",\"kind\":\"ping\"}}");
        let start = Instant::now();
        let response = roundtrip(stream, reader, &line)?;
        if !response.contains("\"status\":\"ok\"") {
            return Err(format!("non-ok ping during overhead measurement: {response}"));
        }
        sink.push(start.elapsed().as_nanos() as u64);
    }
    Ok(())
}

/// Measures the flight-recorder overhead on an idle in-process daemon.
/// Each disarmed/armed batch pair runs back-to-back (order alternating
/// pair to pair), so both modes see the same instantaneous machine
/// conditions with no systematic bias; the reported delta is
/// the *median* of the per-pair p99 deltas, which survives the pairs a
/// scheduler spike lands in (a single pooled p99 is close to a max
/// statistic and swings tens of percent on busy hosts). The p99 values
/// reported alongside are pooled across all batches per mode, for
/// scale. Only meaningful when the daemon shares our process, since
/// the ring is armed per process.
fn measure_recorder_overhead(addr: &str, quick: bool) -> Result<(u64, u64, f64), String> {
    let (batches, samples) = if quick { (40, 100) } else { (60, 150) };
    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut warmup = Vec::new();
    ping_batch_ns(&mut stream, &mut reader, samples / 2, &mut warmup)?;
    let mut armed_ns = Vec::with_capacity(batches * samples);
    let mut disarmed_ns = Vec::with_capacity(batches * samples);
    let mut pair_deltas = Vec::with_capacity(batches);
    for batch in 0..batches {
        let mut batch_disarmed = Vec::with_capacity(samples);
        let mut batch_armed = Vec::with_capacity(samples);
        // alternate which mode goes first so a background-load ramp
        // during the pair cannot systematically bill one mode
        if batch % 2 == 0 {
            quva_obs::flight::disarm();
            ping_batch_ns(&mut stream, &mut reader, samples, &mut batch_disarmed)?;
            quva_obs::flight::arm(0);
            ping_batch_ns(&mut stream, &mut reader, samples, &mut batch_armed)?;
        } else {
            quva_obs::flight::arm(0);
            ping_batch_ns(&mut stream, &mut reader, samples, &mut batch_armed)?;
            quva_obs::flight::disarm();
            ping_batch_ns(&mut stream, &mut reader, samples, &mut batch_disarmed)?;
            quva_obs::flight::arm(0); // leave the ring on, its resting state
        }
        batch_disarmed.sort_unstable();
        batch_armed.sort_unstable();
        let off = percentile(&batch_disarmed, 0.99).max(1);
        let on = percentile(&batch_armed, 0.99);
        pair_deltas.push(on as f64 / off as f64 - 1.0);
        disarmed_ns.extend(batch_disarmed);
        armed_ns.extend(batch_armed);
    }
    armed_ns.sort_unstable();
    disarmed_ns.sort_unstable();
    pair_deltas.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let delta = pair_deltas[pair_deltas.len() / 2].max(0.0);
    Ok((percentile(&armed_ns, 0.99), percentile(&disarmed_ns, 0.99), delta))
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn main() {
    let cfg = parse_args();

    // in-process daemon unless --addr points elsewhere
    let (handle, addr): (Option<ServerHandle>, String) = match &cfg.addr {
        Some(addr) => (None, addr.clone()),
        None => {
            let handle = Server::spawn(ServerConfig {
                workers: 2,
                queue_capacity: 32,
                default_deadline_ms: 60_000,
                ..ServerConfig::default()
            })
            .unwrap_or_else(|e| die(&format!("cannot spawn daemon: {e}")));
            let addr = handle
                .local_addr()
                .unwrap_or_else(|| die("daemon has no TCP address"))
                .to_string();
            (Some(handle), addr)
        }
    };

    let start = Instant::now();
    let clients: Vec<_> = (0..cfg.conns)
        .map(|conn| {
            let addr = addr.clone();
            let (conns, requests) = (cfg.conns, cfg.requests);
            thread::spawn(move || run_client(&addr, conn, conns, requests))
        })
        .collect();
    let mut tally = ClientTally::default();
    for client in clients {
        let t = client.join().unwrap_or_else(|_| die("a client thread panicked"));
        tally.latencies_us.extend(t.latencies_us);
        tally.ok += t.ok;
        tally.errors += t.errors;
        tally.overloaded_retries += t.overloaded_retries;
        tally.deadline_exceeded += t.deadline_exceeded;
        tally.gave_up += t.gave_up;
    }
    let elapsed = start.elapsed();

    // Recorder-overhead gate: armed vs disarmed ping p99 on the now
    // idle daemon. Only possible in-process (arming is per process);
    // noisy hosts get up to five full re-measurements before the
    // recorded delta stands.
    let overhead = if handle.is_some() {
        let mut best: Option<(u64, u64, f64)> = None;
        for attempt in 1..=5 {
            let measured = measure_recorder_overhead(&addr, cfg.quick)
                .unwrap_or_else(|e| die(&format!("recorder overhead measurement failed: {e}")));
            if best.is_none_or(|b| measured.2 < b.2) {
                best = Some(measured);
            }
            match best {
                Some((_, _, delta)) if delta < RECORDER_OVERHEAD_LIMIT => break,
                _ => eprintln!(
                    "recorder overhead attempt {attempt}: {:.2}% delta, re-measuring",
                    measured.2 * 100.0
                ),
            }
        }
        best
    } else {
        None
    };
    if let Some((armed, disarmed, delta)) = overhead {
        eprintln!(
            "recorder overhead: armed p99 {armed} ns vs disarmed p99 {disarmed} ns ({:.2}% delta)",
            delta * 100.0
        );
    }

    // daemon-side counters for the shed / cache-hit rates
    let mut stream = connect(&addr);
    let mut reader = BufReader::new(stream.try_clone().unwrap_or_else(|e| die(&format!("clone: {e}"))));

    // Envelope probe: one *uncached* simulate round-trip (ghz:6 is not
    // in the traffic mix) against the statically predicted total
    // envelope. The queue is idle by now, so the fixed overhead terms
    // in `hi` cover protocol, dispatch, and result rendering; the
    // slack factors live in `CostModel` (mc_slack / compile_slack).
    let probe_trials: u64 = 2_000;
    let probe_env = cost_envelope(
        &Device::ibm_q20(),
        quva_benchmarks::Benchmark::ghz(6).circuit(),
        probe_trials,
        &CostModel::default(),
    );
    let probe_line = format!(
        "{{\"id\":\"envelope-probe\",\"kind\":\"simulate\",\"device\":\"q20\",\"policy\":\"vqm\",\
         \"benchmark\":\"ghz:6\",\"trials\":{probe_trials},\"seed\":7}}"
    );
    let probe_start = Instant::now();
    let probe_response = roundtrip(&mut stream, &mut reader, &probe_line)
        .unwrap_or_else(|e| die(&format!("envelope probe failed: {e}")));
    let probe_ns = probe_start.elapsed().as_nanos() as f64;
    if !probe_response.contains("\"status\":\"ok\"") {
        die(&format!("envelope probe got a non-ok response: {probe_response}"));
    }
    let probe_check = CostCheck {
        resource: "serve_total_ns",
        measured_ns: probe_ns,
        bound: probe_env.total_ns(),
    };
    let probe_violations = violations("simulate/ghz-6/ibm-q20/vqm", &[probe_check]);
    for v in &probe_violations {
        eprintln!("bench_serve: envelope {v}");
    }
    let envelope_holds = probe_violations.is_empty();
    eprintln!(
        "envelope probe: {} ({:.1} ms measured, [{:.1}, {:.1}] ms predicted)",
        if envelope_holds { "HOLDS" } else { "VIOLATED" },
        probe_ns / 1e6,
        probe_env.total_ns().lo / 1e6,
        probe_env.total_ns().hi / 1e6,
    );

    let stats = roundtrip(&mut stream, &mut reader, "{\"id\":\"stats\",\"kind\":\"stats\"}")
        .unwrap_or_else(|e| die(&format!("stats request failed: {e}")));
    if cfg.shutdown {
        let _ = roundtrip(&mut stream, &mut reader, "{\"id\":\"bye\",\"kind\":\"shutdown\"}");
    }
    drop((stream, reader));
    if let Some(handle) = handle {
        handle.shutdown();
        handle.join();
    }

    let cache_hits = extract_f64(&stats, "cache_hits").unwrap_or(0.0);
    let cache_misses = extract_f64(&stats, "cache_misses").unwrap_or(0.0);
    let shed = extract_f64(&stats, "shed").unwrap_or(0.0);

    tally.latencies_us.sort_unstable();
    let p50_us = percentile(&tally.latencies_us, 0.50);
    let p99_us = percentile(&tally.latencies_us, 0.99);
    let throughput_rps = tally.ok as f64 / elapsed.as_secs_f64().max(1e-9);
    let answered = tally.latencies_us.len() as f64;
    let shed_rate = shed / answered.max(1.0);
    let cache_hit_rate = cache_hits / (cache_hits + cache_misses).max(1.0);

    eprintln!(
        "{} request(s) over {} connection(s) in {:.2}s: {} ok, {} retried, {} deadline, {} error",
        answered,
        cfg.conns,
        elapsed.as_secs_f64(),
        tally.ok,
        tally.overloaded_retries,
        tally.deadline_exceeded,
        tally.errors + tally.gave_up
    );
    eprintln!(
        "p50 {p50_us} us, p99 {p99_us} us, {throughput_rps:.1} req/s, cache hit rate {cache_hit_rate:.2}"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"quva-bench-serve/v1\",\n");
    json.push_str(&format!("  \"requests\": {},\n", cfg.requests));
    json.push_str(&format!("  \"conns\": {},\n", cfg.conns));
    json.push_str(&format!("  \"ok\": {},\n", tally.ok));
    json.push_str(&format!("  \"failed\": {},\n", tally.errors + tally.gave_up));
    json.push_str(&format!(
        "  \"overloaded_retries\": {},\n",
        tally.overloaded_retries
    ));
    json.push_str(&format!(
        "  \"deadline_exceeded\": {},\n",
        tally.deadline_exceeded
    ));
    json.push_str(&format!("  \"shed\": {shed},\n"));
    json.push_str(&format!("  \"cache_hits\": {cache_hits},\n"));
    json.push_str(&format!("  \"cache_misses\": {cache_misses},\n"));
    json.push_str(&format!("  \"p50_us\": {p50_us},\n"));
    json.push_str(&format!("  \"p99_us\": {p99_us},\n"));
    json.push_str(&format!("  \"throughput_rps\": {throughput_rps},\n"));
    json.push_str(&format!("  \"shed_rate\": {shed_rate},\n"));
    json.push_str(&format!("  \"cache_hit_rate\": {cache_hit_rate},\n"));
    match overhead {
        Some((armed, disarmed, delta)) => json.push_str(&format!(
            "  \"recorder_overhead\": {{\"armed_p99_ns\": {armed}, \"disarmed_p99_ns\": {disarmed}, \
             \"delta_frac\": {delta}, \"measured\": true}},\n"
        )),
        None => json.push_str(
            "  \"recorder_overhead\": {\"armed_p99_ns\": 0, \"disarmed_p99_ns\": 0, \
             \"delta_frac\": 0, \"measured\": false},\n",
        ),
    }
    json.push_str(&format!(
        "  \"envelope_probe\": {{\"measured_ns\": {probe_ns}, \"lo_ns\": {}, \"hi_ns\": {}, \
         \"holds\": {envelope_holds}}}\n",
        probe_env.total_ns().lo,
        probe_env.total_ns().hi,
    ));
    json.push_str("}\n");
    std::fs::write(&cfg.out, &json).unwrap_or_else(|e| die(&format!("cannot write {}: {e}", cfg.out)));
    println!("wrote {} (p99 {p99_us} us, {throughput_rps:.1} req/s)", cfg.out);

    if let Some(baseline) = &cfg.check {
        let text = std::fs::read_to_string(baseline)
            .unwrap_or_else(|e| die(&format!("cannot read baseline {baseline}: {e}")));
        let base_p99 = extract_f64(&text, "p99_us")
            .unwrap_or_else(|| die(&format!("baseline {baseline} has no p99_us")));
        let base_rps = extract_f64(&text, "throughput_rps")
            .unwrap_or_else(|| die(&format!("baseline {baseline} has no throughput_rps")));
        let p99_limit = base_p99 * (1.0 + cfg.tolerance);
        let rps_floor = base_rps * (1.0 - cfg.tolerance);
        println!(
            "regression gate: p99 {p99_us} us vs baseline {base_p99:.0} (limit {p99_limit:.0}), \
             throughput {throughput_rps:.1} vs baseline {base_rps:.1} (floor {rps_floor:.1})"
        );
        let mut failed = false;
        if tally.errors + tally.gave_up > 0 {
            eprintln!(
                "bench_serve: FAIL — {} request(s) ended without a typed ok",
                tally.errors + tally.gave_up
            );
            failed = true;
        }
        if (p99_us as f64) > p99_limit {
            eprintln!(
                "bench_serve: FAIL — p99 latency regressed {:.1}% (> {:.0}% tolerance)",
                (p99_us as f64 / base_p99 - 1.0) * 100.0,
                cfg.tolerance * 100.0
            );
            failed = true;
        }
        if throughput_rps < rps_floor {
            eprintln!(
                "bench_serve: FAIL — throughput dropped {:.1}% (> {:.0}% tolerance)",
                (1.0 - throughput_rps / base_rps) * 100.0,
                cfg.tolerance * 100.0
            );
            failed = true;
        }
        if !envelope_holds {
            eprintln!("bench_serve: FAIL — uncached round-trip escaped the predicted cost envelope");
            failed = true;
        }
        if let Some((armed, disarmed, delta)) = overhead {
            println!(
                "recorder gate: armed p99 {armed} ns vs disarmed p99 {disarmed} ns \
                 ({:.2}% delta, limit {:.0}%)",
                delta * 100.0,
                RECORDER_OVERHEAD_LIMIT * 100.0
            );
            if delta >= RECORDER_OVERHEAD_LIMIT {
                eprintln!(
                    "bench_serve: FAIL — flight recorder costs {:.2}% of ping p99 (limit {:.0}%)",
                    delta * 100.0,
                    RECORDER_OVERHEAD_LIMIT * 100.0
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("regression gate: PASS");
    }
}
