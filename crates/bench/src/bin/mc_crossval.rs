//! Statistical cross-validation of the bit-parallel Monte-Carlo
//! kernel against the scalar oracle.
//!
//! The two kernels are *distinct deterministic samples* of the same
//! fault model, so their estimates can never be bit-compared — the
//! contract is statistical: over the table-1 suite under four mapping
//! policies, the bit-parallel estimate must land within ±4 binomial
//! standard errors of the scalar oracle's estimate (SE of the
//! *difference* of two independent binomial estimates, which is what
//! actually distributes the gap). Both estimates are additionally
//! checked against the analytic PST, so a bug that biased *both*
//! kernels the same way is still caught.
//!
//! ```text
//! mc_crossval [--trials N] [--seed N] [--out PATH]
//! ```
//!
//! Writes a machine-readable report (schema `quva-mc-crossval/v1`)
//! and exits nonzero if any case exceeds the ±4 SE band. At the
//! default 100k trials a true-null 4σ excursion has probability
//! ~6e-5 per case (~0.2% across the 28-case grid), so a failure is a
//! kernel bug, not noise.

use quva::MappingPolicy;
use quva_bench::policy_eval::{mc_pst_of, pst_of};
use quva_device::Device;
use quva_sim::McKernel;

struct Config {
    trials: u64,
    seed: u64,
    out: String,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        trials: 100_000,
        seed: 7,
        out: "CROSSVAL.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--trials" => {
                cfg.trials = value("--trials")
                    .parse()
                    .unwrap_or_else(|_| die("--trials expects an integer"));
            }
            "--seed" => {
                cfg.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed expects an integer"));
            }
            "--out" => cfg.out = value("--out"),
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    if cfg.trials == 0 {
        die("--trials must be positive");
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("mc_crossval: {msg}");
    std::process::exit(2);
}

fn main() {
    let cfg = parse_args();
    let device = Device::ibm_q20();
    let policies: [(&str, MappingPolicy); 4] = [
        ("baseline", MappingPolicy::baseline()),
        ("vqm", MappingPolicy::vqm()),
        ("vqm-mah4", MappingPolicy::vqm_hop_limited()),
        ("vqa-vqm", MappingPolicy::vqa_vqm()),
    ];

    let mut rows = Vec::new();
    let mut worst_z = 0.0f64;
    let mut failures = 0usize;
    for bench in quva_benchmarks::table1_suite() {
        for (pname, policy) in &policies {
            let scalar = mc_pst_of(*policy, &bench, &device, cfg.trials, cfg.seed, McKernel::Scalar);
            let bp = mc_pst_of(
                *policy,
                &bench,
                &device,
                cfg.trials,
                cfg.seed,
                McKernel::BitParallel,
            );
            let analytic = pst_of(*policy, &bench, &device);
            let n = cfg.trials as f64;
            // SE of the difference of two independent binomial
            // estimates; floored at one success-count quantum so a
            // PST of exactly 0 or 1 cannot divide by zero.
            let var = scalar.pst * (1.0 - scalar.pst) / n + bp.pst * (1.0 - bp.pst) / n;
            let se = var.sqrt().max(1.0 / n);
            let z = (bp.pst - scalar.pst).abs() / se;
            // each kernel must also agree with the analytic value —
            // a shared bias would cancel in the pairwise z
            let an_se = (analytic * (1.0 - analytic) / n).sqrt().max(1.0 / n);
            let z_an = ((bp.pst - analytic).abs() / an_se).max((scalar.pst - analytic).abs() / an_se);
            let ok = z <= 4.0 && z_an <= 4.0;
            if !ok {
                failures += 1;
            }
            worst_z = worst_z.max(z).max(z_an);
            println!(
                "{:<12} {:<9} scalar {:.5} bitparallel {:.5} analytic {:.5} z {:.2} z_analytic {:.2} {}",
                bench.name(),
                pname,
                scalar.pst,
                bp.pst,
                analytic,
                z,
                z_an,
                if ok { "ok" } else { "FAIL" }
            );
            rows.push(format!(
                "    {{\"bench\": \"{}\", \"policy\": \"{}\", \"scalar_pst\": {}, \
                 \"bitparallel_pst\": {}, \"analytic_pst\": {}, \"z\": {}, \"z_analytic\": {}, \
                 \"ok\": {}}}",
                bench.name(),
                pname,
                scalar.pst,
                bp.pst,
                analytic,
                z,
                z_an,
                ok
            ));
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"quva-mc-crossval/v1\",\n");
    json.push_str(&format!("  \"trials\": {},\n", cfg.trials));
    json.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    json.push_str("  \"tolerance_se\": 4.0,\n");
    json.push_str(&format!("  \"worst_z\": {worst_z},\n"));
    json.push_str(&format!("  \"failures\": {failures},\n"));
    json.push_str("  \"cases\": [\n");
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&cfg.out, &json).unwrap_or_else(|e| die(&format!("cannot write {}: {e}", cfg.out)));

    println!(
        "wrote {} ({} cases, worst z {worst_z:.2}, {failures} failure(s))",
        cfg.out,
        rows.len()
    );
    if failures > 0 {
        eprintln!("mc_crossval: FAIL — {failures} case(s) beyond ±4 SE of the scalar oracle");
        std::process::exit(1);
    }
}
