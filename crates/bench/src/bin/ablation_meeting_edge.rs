//! Ablation report: ablation_meeting_edge.

fn main() {
    let table = quva_bench::ablations::ablation_meeting_edge();
    quva_bench::io::report("ablation_meeting_edge", "ablation_meeting_edge ablation", &table);
}
