//! Extension experiment: the benefit across device families.

fn main() {
    let table = quva_bench::real_system::ext_topologies();
    quva_bench::io::report("ext_topologies", "VQA+VQM benefit across topologies", &table);
}
