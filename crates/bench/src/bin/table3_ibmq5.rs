//! Regenerates Table 3: the noisy IBM-Q5 evaluation.

fn main() {
    let table = quva_bench::real_system::table3_ibmq5(2019);
    quva_bench::io::report("table3_ibmq5", "IBM-Q5 noisy-simulator PST", &table);
}
