//! Regenerates Figure 8: temporal drift of three coupling links.

fn main() {
    let table = quva_bench::characterization::fig08_temporal();
    quva_bench::io::report(
        "fig08_temporal",
        "per-day error of strong/median/weak links",
        &table,
    );
}
