//! Regenerates Table 1: benchmark characteristics.

fn main() {
    let table = quva_bench::policy_eval::table1_benchmarks();
    quva_bench::io::report("table1_benchmarks", "benchmark characteristics", &table);
}
