//! Ablation report: crosstalk robustness.

fn main() {
    let table = quva_bench::ablations::ablation_crosstalk();
    quva_bench::io::report(
        "ablation_crosstalk",
        "benefit under simultaneous-drive crosstalk",
        &table,
    );
}
