//! Ablation report: ablation_optimizer.

fn main() {
    let table = quva_bench::ablations::ablation_optimizer();
    quva_bench::io::report("ablation_optimizer", "ablation_optimizer ablation", &table);
}
