//! Regenerates Table 2: sensitivity to error-rate scaling.

fn main() {
    let table = quva_bench::policy_eval::table2_error_scaling();
    quva_bench::io::report(
        "table2_error_scaling",
        "VQA+VQM benefit under error scaling",
        &table,
    );
}
