//! Regenerates Figure 7: two-qubit error-rate distribution.

fn main() {
    let (table, h) = quva_bench::characterization::fig07_error2q();
    println!("2Q error distribution (%):\n{}", h.render(40));
    quva_bench::io::report("fig07_error2q", "two-qubit error distribution", &table);
}
