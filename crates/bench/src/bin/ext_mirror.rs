//! Extension: mirror-circuit machine probe across policies — the
//! scalable reliability benchmark, evaluated exactly like §7.

use quva::MappingPolicy;
use quva_benchmarks::Benchmark;
use quva_device::Device;
use quva_sim::run_noisy_trials;
use quva_stats::{fmt3, fmt_ratio, Table};

fn main() {
    let device = Device::ibm_q5();
    let mut table = Table::new(["benchmark", "pst_baseline", "pst_vqa_vqm", "benefit"]);
    for (n, depth) in [(3, 2), (4, 2), (5, 3)] {
        let bench = Benchmark::mirror(n, depth, 9);
        let pst = |policy: MappingPolicy| -> f64 {
            let compiled = policy
                .compile(bench.circuit(), &device)
                .expect("mirror compiles on q5");
            run_noisy_trials(&device, compiled.physical(), 4096, 13)
                .expect("routed")
                .success_rate(|o| bench.is_success(o))
        };
        let base = pst(MappingPolicy::baseline());
        let aware = pst(MappingPolicy::vqa_vqm());
        table.row([
            bench.name().to_string(),
            fmt3(base),
            fmt3(aware),
            fmt_ratio(aware / base),
        ]);
    }
    quva_bench::io::report("ext_mirror", "mirror-circuit probe on the noisy Q5", &table);
}
