//! Regenerates Figure 5: T1/T2 coherence-time distributions.

fn main() {
    let (table, h1, h2) = quva_bench::characterization::fig05_coherence();
    println!("T1 distribution (µs):\n{}", h1.render(40));
    println!("T2 distribution (µs):\n{}", h2.render(40));
    quva_bench::io::report("fig05_coherence", "T1/T2 coherence distributions", &table);
}
