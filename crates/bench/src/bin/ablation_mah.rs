//! Ablation report: ablation_mah.

fn main() {
    let table = quva_bench::ablations::ablation_mah();
    quva_bench::io::report("ablation_mah", "ablation_mah ablation", &table);
}
