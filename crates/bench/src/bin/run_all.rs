//! Regenerates every table and figure of the paper in one run.

use quva_bench::{ablations, characterization, io, policy_eval, real_system};

fn main() {
    let (t5, h1, h2) = characterization::fig05_coherence();
    println!("T1 distribution (µs):\n{}", h1.render(40));
    println!("T2 distribution (µs):\n{}", h2.render(40));
    io::report("fig05_coherence", "T1/T2 coherence distributions", &t5);

    let (t6, h6) = characterization::fig06_error1q();
    println!("1Q error distribution (%):\n{}", h6.render(40));
    io::report("fig06_error1q", "single-qubit error distribution", &t6);

    let (t7, h7) = characterization::fig07_error2q();
    println!("2Q error distribution (%):\n{}", h7.render(40));
    io::report("fig07_error2q", "two-qubit error distribution", &t7);

    io::report(
        "fig08_temporal",
        "per-day error of strong/median/weak links",
        &characterization::fig08_temporal(),
    );
    io::report(
        "fig09_spatial",
        "IBM-Q20 per-link failure map",
        &characterization::fig09_spatial(),
    );
    io::report(
        "table1_benchmarks",
        "benchmark characteristics",
        &policy_eval::table1_benchmarks(),
    );
    io::report(
        "fig12_vqm",
        "VQM relative PST vs baseline",
        &policy_eval::fig12_vqm(),
    );
    io::report(
        "fig13_policies",
        "policy comparison (normalized PST)",
        &policy_eval::fig13_policies(),
    );
    io::report(
        "fig14_daily",
        "bv-16 benefit across 52 daily calibrations",
        &policy_eval::fig14_daily(),
    );
    io::report(
        "table2_error_scaling",
        "VQA+VQM benefit under error scaling",
        &policy_eval::table2_error_scaling(),
    );
    io::report(
        "table3_ibmq5",
        "IBM-Q5 noisy-simulator PST",
        &real_system::table3_ibmq5(2019),
    );
    io::report(
        "table3_exact",
        "IBM-Q5 exact (density-matrix) PST",
        &real_system::table3_ibmq5_exact(),
    );
    io::report(
        "ext_topologies",
        "VQA+VQM benefit across topologies",
        &real_system::ext_topologies(),
    );
    io::report(
        "fig16_partitioning",
        "STPT of partitioning choices",
        &real_system::fig16_partitioning(),
    );

    // ablations beyond the paper's own artifacts
    io::report("ablation_mah", "MAH budget sweep", &ablations::ablation_mah());
    io::report(
        "ablation_meeting_edge",
        "meeting-edge extension",
        &ablations::ablation_meeting_edge(),
    );
    io::report(
        "ablation_optimizer",
        "peephole optimizer pre-pass",
        &ablations::ablation_optimizer(),
    );
    io::report(
        "ablation_correlated",
        "benefit under correlated bursts",
        &ablations::ablation_correlated_errors(),
    );
    io::report(
        "ablation_readout",
        "readout-aware allocation",
        &ablations::ablation_readout(),
    );
    io::report(
        "ablation_crosstalk",
        "benefit under simultaneous-drive crosstalk",
        &ablations::ablation_crosstalk(),
    );
    io::report(
        "ablation_router",
        "router architecture comparison",
        &ablations::ablation_router(),
    );
    io::report(
        "section4_coherence",
        "gate vs coherence failure weights",
        &ablations::section4_coherence(),
    );
    println!("All experiments regenerated into results/.");
    println!("(ext_convergence and ext_mirror are separate binaries: cargo run -p quva-bench --bin <name>)");
}
