//! Ablation report: stepwise lookahead vs plan-based routing.

fn main() {
    let table = quva_bench::ablations::ablation_router();
    quva_bench::io::report("ablation_router", "router architecture comparison", &table);
}
