//! Regenerates Figure 13: native / baseline / VQM / VQA+VQM.

fn main() {
    let table = quva_bench::policy_eval::fig13_policies();
    quva_bench::io::report("fig13_policies", "policy comparison (normalized PST)", &table);
}
