//! Table 3 evaluated exactly with the density-matrix simulator.

fn main() {
    let table = quva_bench::real_system::table3_ibmq5_exact();
    quva_bench::io::report("table3_exact", "IBM-Q5 exact (density-matrix) PST", &table);
}
