//! Machine-readable simulator benchmark: times the Monte-Carlo trial
//! loop sequentially and on the parallel [`McEngine`] at 1/2/4/8
//! threads, writes `BENCH_sim.json`, and (with `--check`) gates CI on
//! wall-clock regressions against a committed baseline.
//!
//! The workload is the criterion `run_trials/bv-16` bench expressed as
//! data: bv-16 compiled with the baseline policy onto IBM-Q20, faults
//! injected per gate event. Regressions are judged on normalized
//! ns/trial so `--quick` runs remain comparable to a full baseline.
//!
//! ```text
//! bench_sim [--trials N] [--reps N] [--quick] [--out PATH]
//!           [--check BASELINE] [--tolerance FRAC]
//! ```
//!
//! Exit status is non-zero when `--check` finds the sequential loop
//! more than `--tolerance` (default 0.15) slower than the baseline,
//! when a host with >= 4 CPUs fails to reach a 2x speedup at 4
//! threads, or when the disabled-tracing dispatch (`McEngine::run`
//! with the `quva-obs` recorder off) costs more than 2% over the
//! uninstrumented reference loop (`McEngine::run_reference`).

use quva::MappingPolicy;
use quva_analysis::{cost_envelope, total_events, CostModel};
use quva_bench::cost_check::{violations, CostCheck};
use quva_device::Device;
use quva_sim::{CoherenceModel, FailureProfile, McEngine};
use std::time::Instant;

/// One timed engine configuration.
struct Row {
    name: &'static str,
    threads: usize,
    ns: u128,
    ns_per_trial: f64,
}

struct Config {
    trials: u64,
    reps: u32,
    out: String,
    check: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        trials: 1_000_000,
        reps: 3,
        out: "BENCH_sim.json".into(),
        check: None,
        tolerance: 0.15,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--trials" => {
                cfg.trials = value("--trials")
                    .parse()
                    .unwrap_or_else(|_| die("--trials expects an integer"));
            }
            "--reps" => {
                cfg.reps = value("--reps")
                    .parse()
                    .unwrap_or_else(|_| die("--reps expects an integer"));
            }
            "--quick" => {
                cfg.trials = 200_000;
                cfg.reps = 2;
            }
            "--out" => cfg.out = value("--out"),
            "--check" => cfg.check = Some(value("--check")),
            "--tolerance" => {
                cfg.tolerance = value("--tolerance")
                    .parse()
                    .unwrap_or_else(|_| die("--tolerance expects a fraction"));
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    if cfg.trials == 0 || cfg.reps == 0 {
        die("--trials and --reps must be positive");
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("bench_sim: {msg}");
    std::process::exit(2);
}

/// Best-of-`reps` wall clock for one engine configuration, after one
/// untimed warm-up run.
fn time_engine(engine: &McEngine, profile: &FailureProfile, trials: u64, reps: u32) -> u128 {
    engine.run(profile, trials, 1);
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(engine.run(profile, trials, 1));
            start.elapsed().as_nanos()
        })
        .min()
        .unwrap_or(0)
}

/// Disabled-recorder overhead of the observability layer: with the
/// recorder off, `McEngine::run` dispatches to the reference loop
/// after one relaxed atomic load, so its best-of-`reps` wall clock
/// must track `McEngine::run_reference` to within noise. Returns the
/// fractional overhead (`dispatch / reference - 1`, may be negative).
fn measure_obs_overhead(profile: &FailureProfile, trials: u64, reps: u32) -> f64 {
    assert!(!quva_obs::enabled(), "overhead baseline needs the recorder off");
    let engine = McEngine::sequential();
    let reps = reps.max(3);
    let dispatch = time_engine(&engine, profile, trials, reps);
    engine.run_reference(profile, trials, 1);
    let reference = (0..reps)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(engine.run_reference(profile, trials, 1));
            start.elapsed().as_nanos()
        })
        .min()
        .unwrap_or(0);
    if reference == 0 {
        return 0.0;
    }
    dispatch as f64 / reference as f64 - 1.0
}

/// Pulls `"key": <number>` out of a hand-rolled JSON line.
fn extract_f64(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The baseline's normalized sequential cost, read from a previous
/// `BENCH_sim.json`.
fn baseline_ns_per_trial(path: &str) -> f64 {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read baseline {path}: {e}")));
    text.lines()
        .find(|l| l.contains("\"name\": \"sequential\""))
        .and_then(|l| extract_f64(l, "ns_per_trial"))
        .unwrap_or_else(|| die(&format!("baseline {path} has no sequential ns_per_trial")))
}

fn main() {
    let cfg = parse_args();
    let device = Device::ibm_q20();
    let program = quva_benchmarks::bv(16);
    let compile_start = Instant::now();
    let compiled = MappingPolicy::baseline()
        .compile(&program, &device)
        .expect("bv-16 compiles on ibm-q20");
    let compile_ns = compile_start.elapsed().as_nanos() as f64;
    let profile = FailureProfile::new(&device, compiled.physical(), CoherenceModel::Disabled)
        .expect("compiled circuit is routed");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let configs: [(&str, McEngine); 5] = [
        ("sequential", McEngine::sequential()),
        ("threads-1", McEngine::new(1)),
        ("threads-2", McEngine::new(2)),
        ("threads-4", McEngine::new(4)),
        ("threads-8", McEngine::new(8)),
    ];

    // Every configuration must sample the identical estimate before we
    // bother timing it — the gate doubles as a determinism check.
    let reference = configs[0].1.run(&profile, cfg.trials, 1);
    for (name, engine) in &configs[1..] {
        let est = engine.run(&profile, cfg.trials, 1);
        assert!(
            est.pst.to_bits() == reference.pst.to_bits() && est.trials == reference.trials,
            "{name} diverged from the sequential estimate"
        );
    }

    let rows: Vec<Row> = configs
        .iter()
        .map(|(name, engine)| {
            let ns = time_engine(engine, &profile, cfg.trials, cfg.reps);
            eprintln!(
                "{name:<12} {ns:>12} ns  ({:.2} ns/trial)",
                ns as f64 / cfg.trials as f64
            );
            Row {
                name,
                threads: engine.threads(),
                ns,
                ns_per_trial: ns as f64 / cfg.trials as f64,
            }
        })
        .collect();

    let obs_overhead = measure_obs_overhead(&profile, cfg.trials, cfg.reps);
    eprintln!(
        "obs dispatch overhead (recorder off): {:+.2}%",
        obs_overhead * 100.0
    );

    let seq = rows[0].ns_per_trial;
    let speedup_4t = rows
        .iter()
        .find(|r| r.name == "threads-4")
        .map_or(1.0, |r| seq / r.ns_per_trial);

    // Envelope-validation stage: predict [lo, hi] wall-clock bounds
    // from the *logical* circuit with the shipped default CostModel
    // (the model quvad admits jobs on), then require this run's
    // measured compile and sequential Monte-Carlo times to land inside
    // the band. The slack factors making this fair across host speeds
    // are part of the model (`CostModel::mc_slack` / `compile_slack`).
    let envelope = cost_envelope(&device, &program, cfg.trials, &CostModel::default());
    let checks = [
        CostCheck {
            resource: "compile_ns",
            measured_ns: compile_ns,
            bound: envelope.compile_ns,
        },
        CostCheck {
            resource: "mc_ns",
            measured_ns: rows[0].ns as f64,
            bound: envelope.mc_ns,
        },
    ];
    let envelope_violations = violations("run_trials/bv-16/ibm-q20/baseline", &checks);
    for v in &envelope_violations {
        eprintln!("bench_sim: envelope {v}");
    }
    let envelope_holds = envelope_violations.is_empty();
    eprintln!("envelope: {}", if envelope_holds { "HOLDS" } else { "VIOLATED" });

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"quva-bench-sim/v1\",\n");
    json.push_str("  \"workload\": \"run_trials/bv-16/ibm-q20/baseline\",\n");
    json.push_str(&format!("  \"trials\": {},\n", cfg.trials));
    json.push_str(&format!("  \"reps\": {},\n", cfg.reps));
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"ns\": {}, \"ns_per_trial\": {}}}{comma}\n",
            row.name, row.threads, row.ns, row.ns_per_trial
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"envelope\": {{\"compile_lo_ns\": {}, \"compile_hi_ns\": {}, \"measured_compile_ns\": {}, \
         \"mc_lo_ns\": {}, \"mc_hi_ns\": {}, \"measured_mc_ns\": {}, \"holds\": {envelope_holds}}},\n",
        envelope.compile_ns.lo,
        envelope.compile_ns.hi,
        compile_ns,
        envelope.mc_ns.lo,
        envelope.mc_ns.hi,
        rows[0].ns,
    ));
    json.push_str(&format!("  \"obs_overhead\": {obs_overhead},\n"));
    json.push_str(&format!("  \"speedup_4t\": {speedup_4t}\n"));
    json.push_str("}\n");
    std::fs::write(&cfg.out, &json).unwrap_or_else(|e| die(&format!("cannot write {}: {e}", cfg.out)));
    println!("wrote {} (speedup at 4 threads: {speedup_4t:.2}x)", cfg.out);

    if let Some(baseline) = &cfg.check {
        let base = baseline_ns_per_trial(baseline);
        let limit = base * (1.0 + cfg.tolerance);
        println!("regression gate: sequential {seq:.3} ns/trial vs baseline {base:.3} (limit {limit:.3})");
        if seq > limit {
            eprintln!(
                "bench_sim: FAIL — run_trials regressed {:.1}% (> {:.0}% tolerance)",
                (seq / base - 1.0) * 100.0,
                cfg.tolerance * 100.0
            );
            std::process::exit(1);
        }
        if host_threads >= 4 {
            if speedup_4t < 2.0 {
                eprintln!(
                    "bench_sim: FAIL — {speedup_4t:.2}x speedup at 4 threads on a \
                     {host_threads}-CPU host (need >= 2x)"
                );
                std::process::exit(1);
            }
        } else {
            println!("speedup gate skipped: host has {host_threads} CPU(s), need >= 4");
        }
        if obs_overhead > 0.02 {
            eprintln!(
                "bench_sim: FAIL — disabled tracing costs {:.1}% over the reference loop (> 2%)",
                obs_overhead * 100.0
            );
            std::process::exit(1);
        }
        if !envelope_holds {
            eprintln!("bench_sim: FAIL — measured wall-clock escaped the default-model cost envelope");
            std::process::exit(1);
        }
        // Calibrate-predict-verify: the ns-per-event the committed
        // baseline implies must still bound this host's measurements.
        let text = std::fs::read_to_string(baseline)
            .unwrap_or_else(|e| die(&format!("cannot read baseline {baseline}: {e}")));
        let events_per_trial = total_events(compiled.physical()) as f64;
        let calibrated = CostModel::from_bench(&text, events_per_trial).unwrap_or_else(|e| {
            die(&format!(
                "baseline {baseline} cannot calibrate the cost model: {e}"
            ))
        });
        let recal = cost_envelope(&device, &program, cfg.trials, &calibrated);
        let recal_checks = [
            CostCheck {
                resource: "compile_ns",
                measured_ns: compile_ns,
                bound: recal.compile_ns,
            },
            CostCheck {
                resource: "mc_ns",
                measured_ns: rows[0].ns as f64,
                bound: recal.mc_ns,
            },
        ];
        let recal_violations = violations("calibrated/bv-16/ibm-q20/baseline", &recal_checks);
        if !recal_violations.is_empty() {
            for v in &recal_violations {
                eprintln!("bench_sim: envelope {v}");
            }
            eprintln!("bench_sim: FAIL — measured wall-clock escaped the baseline-calibrated envelope");
            std::process::exit(1);
        }
        println!("envelope gate: PASS (default and baseline-calibrated models)");
        println!("regression gate: PASS");
    }
}
