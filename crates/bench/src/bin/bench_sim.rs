//! Machine-readable simulator benchmark: times the Monte-Carlo trial
//! kernels (the scalar oracle and the production bit-parallel SWAR
//! kernel) and the parallel [`McEngine`] at 1/2/4/8 threads, writes
//! `BENCH_sim.json` (schema `quva-bench-sim/v2`), and (with
//! `--check`) gates CI on wall-clock regressions against a committed
//! baseline.
//!
//! The workload is the criterion `run_trials/bv-16` bench expressed as
//! data: bv-16 compiled with the baseline policy onto IBM-Q20, faults
//! injected per gate event. Regressions are judged on normalized
//! ns/trial so `--quick` runs remain comparable to a full baseline.
//!
//! ```text
//! bench_sim [--trials N] [--reps N] [--quick] [--out PATH]
//!           [--check BASELINE] [--tolerance FRAC]
//! ```
//!
//! Exit status is non-zero when `--check` finds the bit-parallel
//! kernel more than `--tolerance` (default 0.15) slower per trial
//! than the baseline's `bitparallel` row, when the bit-parallel
//! kernel fails to run >= 10x faster than the scalar oracle (judged
//! against the better of the same-run scalar row and the committed
//! baseline's scalar row), when a host with >= 4 CPUs fails to reach
//! a 2x speedup at 4 threads (on smaller hosts the assertion is
//! visibly skipped, not silently passed), or when the
//! disabled-tracing dispatch (`McEngine::run` with the `quva-obs`
//! recorder off) costs more than 5% over the uninstrumented reference
//! loop (`McEngine::run_reference`). The obs threshold was 2% in the
//! scalar era (1.5 ns of 75 ns/trial); at the bit-parallel kernel's
//! ~8 ns/trial, 2% is ~160 ps — below timing resolution on a shared
//! runner — so the gate now allows 5%, still far below the cost of
//! any real dispatch-path regression.

use quva::MappingPolicy;
use quva_analysis::{cost_envelope, total_events, CostModel};
use quva_bench::cost_check::{violations, CostCheck};
use quva_device::Device;
use quva_sim::{CoherenceModel, FailureProfile, McEngine, McKernel};
use std::time::Instant;

/// One timed engine configuration.
struct Row {
    name: &'static str,
    threads: usize,
    ns: u128,
    ns_per_trial: f64,
}

struct Config {
    trials: u64,
    reps: u32,
    out: String,
    check: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        trials: 1_000_000,
        reps: 3,
        out: "BENCH_sim.json".into(),
        check: None,
        tolerance: 0.15,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--trials" => {
                cfg.trials = value("--trials")
                    .parse()
                    .unwrap_or_else(|_| die("--trials expects an integer"));
            }
            "--reps" => {
                cfg.reps = value("--reps")
                    .parse()
                    .unwrap_or_else(|_| die("--reps expects an integer"));
            }
            "--quick" => {
                cfg.trials = 200_000;
                cfg.reps = 3;
            }
            "--out" => cfg.out = value("--out"),
            "--check" => cfg.check = Some(value("--check")),
            "--tolerance" => {
                cfg.tolerance = value("--tolerance")
                    .parse()
                    .unwrap_or_else(|_| die("--tolerance expects a fraction"));
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    if cfg.trials == 0 || cfg.reps == 0 {
        die("--trials and --reps must be positive");
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("bench_sim: {msg}");
    std::process::exit(2);
}

/// Best-of-`reps` per-invocation wall clock of `f`, after one warm-up
/// invocation that doubles as a batch-size estimate.
///
/// The bit-parallel kernel finishes a `--quick` workload in ~2 ms —
/// short enough that a single invocation is at the mercy of scheduler
/// noise on a shared CI runner. Each timed sample therefore batches
/// enough invocations to span >= 50 ms and reports the per-invocation
/// mean, which keeps normalized ns/trial comparable between `--quick`
/// runs and the full committed baseline.
fn best_of<F: FnMut()>(reps: u32, mut f: F) -> u128 {
    let start = Instant::now();
    f();
    let once = start.elapsed().as_nanos().max(1);
    let iters = u128::min(50_000_000 / once, 63) as u32 + 1;
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() / u128::from(iters)
        })
        .min()
        .unwrap_or(0)
}

/// Best-of-`reps` wall clock for one engine configuration.
fn time_engine(engine: &McEngine, profile: &FailureProfile, trials: u64, reps: u32) -> u128 {
    best_of(reps, || {
        std::hint::black_box(engine.run(profile, trials, 1));
    })
}

/// Interleaved best-of comparison of two timed closures: per-
/// invocation best-of-`reps` for each side, alternating A and B
/// batches rep by rep so slow host-state drift (thermal throttling, a
/// neighbour VM waking up) hits both sides equally instead of biasing
/// whichever side ran last. Ratios of the two sides are therefore far
/// more stable than ratios of independently timed rows.
fn best_of_pair<A: FnMut(), B: FnMut()>(reps: u32, mut a: A, mut b: B) -> (u128, u128) {
    let iters_of = |once: u128| u128::min(50_000_000 / once.max(1), 63) + 1;
    let start = Instant::now();
    a();
    let ia = iters_of(start.elapsed().as_nanos());
    let start = Instant::now();
    b();
    let ib = iters_of(start.elapsed().as_nanos());
    let mut best_a = u128::MAX;
    let mut best_b = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..ia {
            a();
        }
        best_a = best_a.min(start.elapsed().as_nanos() / ia);
        let start = Instant::now();
        for _ in 0..ib {
            b();
        }
        best_b = best_b.min(start.elapsed().as_nanos() / ib);
    }
    (best_a, best_b)
}

/// Disabled-recorder overhead of the observability layer: with the
/// recorder off, `McEngine::run` dispatches to the reference loop
/// after one relaxed atomic load, so its best-of-`reps` wall clock
/// must track `McEngine::run_reference` to within noise. Returns the
/// fractional overhead (`dispatch / reference - 1`, may be negative).
fn measure_obs_overhead(profile: &FailureProfile, trials: u64, reps: u32) -> f64 {
    assert!(!quva_obs::enabled(), "overhead baseline needs the recorder off");
    let engine = McEngine::sequential();
    let (dispatch, reference) = best_of_pair(
        reps.max(3),
        || {
            std::hint::black_box(engine.run(profile, trials, 1));
        },
        || {
            std::hint::black_box(engine.run_reference(profile, trials, 1));
        },
    );
    if reference == 0 || reference == u128::MAX {
        return 0.0;
    }
    dispatch as f64 / reference as f64 - 1.0
}

/// Same-run kernel ratio: scalar-oracle ns/trial over bit-parallel
/// ns/trial, interleaved so both kernels see the same host phases.
fn measure_kernel_ratio(profile: &FailureProfile, trials: u64, reps: u32) -> f64 {
    let bp_engine = McEngine::sequential();
    let scalar_engine = McEngine::sequential().with_kernel(McKernel::Scalar);
    let (bp, scalar) = best_of_pair(
        reps,
        || {
            std::hint::black_box(bp_engine.run(profile, trials, 1));
        },
        || {
            std::hint::black_box(scalar_engine.run(profile, trials, 1));
        },
    );
    if bp == 0 || bp == u128::MAX {
        return 1.0;
    }
    scalar as f64 / bp as f64
}

/// Pulls `"key": <number>` out of a hand-rolled JSON line.
fn extract_f64(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// A named row's normalized ns/trial, read from a previous
/// `BENCH_sim.json`.
fn baseline_row_ns_per_trial(text: &str, name: &str) -> Option<f64> {
    let tag = format!("\"name\": \"{name}\"");
    text.lines()
        .find(|l| l.contains(&tag))
        .and_then(|l| extract_f64(l, "ns_per_trial"))
}

/// The baseline row the regression gate compares against: the
/// `bitparallel` row of a v2 file, or the `sequential` row of a
/// pre-kernel v1 file (which timed the then-default scalar loop).
fn baseline_gate_ns_per_trial(text: &str, path: &str) -> f64 {
    baseline_row_ns_per_trial(text, "bitparallel")
        .or_else(|| baseline_row_ns_per_trial(text, "sequential"))
        .unwrap_or_else(|| {
            die(&format!(
                "baseline {path} has no bitparallel or sequential ns_per_trial"
            ))
        })
}

fn main() {
    let cfg = parse_args();
    let device = Device::ibm_q20();
    let program = quva_benchmarks::bv(16);
    let compile_start = Instant::now();
    let compiled = MappingPolicy::baseline()
        .compile(&program, &device)
        .expect("bv-16 compiles on ibm-q20");
    let compile_ns = compile_start.elapsed().as_nanos() as f64;
    let profile = FailureProfile::new(&device, compiled.physical(), CoherenceModel::Disabled)
        .expect("compiled circuit is routed");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let configs: [(&str, McEngine); 6] = [
        ("scalar", McEngine::sequential().with_kernel(McKernel::Scalar)),
        ("bitparallel", McEngine::sequential()),
        ("threads-1", McEngine::new(1)),
        ("threads-2", McEngine::new(2)),
        ("threads-4", McEngine::new(4)),
        ("threads-8", McEngine::new(8)),
    ];
    assert_eq!(
        configs[1].1.kernel(),
        McKernel::BitParallel,
        "the default kernel is bit-parallel"
    );

    // Every bit-parallel configuration must sample the identical
    // estimate before we bother timing it — the gate doubles as a
    // determinism check. The scalar oracle is a *different*
    // deterministic sample, checked for its own thread-invariance.
    let reference = configs[1].1.run(&profile, cfg.trials, 1);
    for (name, engine) in &configs[2..] {
        let est = engine.run(&profile, cfg.trials, 1);
        assert!(
            est.pst.to_bits() == reference.pst.to_bits() && est.trials == reference.trials,
            "{name} diverged from the sequential bit-parallel estimate"
        );
    }
    let oracle = configs[0].1.run(&profile, cfg.trials, 1);
    let oracle_mt = McEngine::new(4)
        .with_kernel(McKernel::Scalar)
        .run(&profile, cfg.trials, 1);
    assert!(
        oracle.pst.to_bits() == oracle_mt.pst.to_bits(),
        "the scalar oracle diverged across thread counts"
    );
    assert!(
        oracle.successes != reference.successes || cfg.trials < 1_000,
        "scalar and bit-parallel drew the same sample — the kernels are aliased"
    );

    let rows: Vec<Row> = configs
        .iter()
        .map(|(name, engine)| {
            let ns = time_engine(engine, &profile, cfg.trials, cfg.reps);
            eprintln!(
                "{name:<12} {ns:>12} ns  ({:.2} ns/trial)",
                ns as f64 / cfg.trials as f64
            );
            Row {
                name,
                threads: engine.threads(),
                ns,
                ns_per_trial: ns as f64 / cfg.trials as f64,
            }
        })
        .collect();

    let obs_overhead = measure_obs_overhead(&profile, cfg.trials, cfg.reps);
    eprintln!(
        "obs dispatch overhead (recorder off): {:+.2}%",
        obs_overhead * 100.0
    );

    let row_ns = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .map(|r| r.ns_per_trial)
            .unwrap_or_else(|| die(&format!("missing {name} row")))
    };
    let bp = row_ns("bitparallel");
    // the headline ratio is measured interleaved, not derived from the
    // independently timed rows — row timings land in different host
    // phases and their quotient wobbles far more than the kernels do
    let speedup_vs_scalar = measure_kernel_ratio(&profile, cfg.trials, cfg.reps);
    let speedup_4t = bp / row_ns("threads-4");
    eprintln!("bit-parallel vs scalar oracle (interleaved): {speedup_vs_scalar:.1}x");

    // Envelope-validation stage: predict [lo, hi] wall-clock bounds
    // from the *logical* circuit with the shipped default CostModel
    // (the model quvad admits jobs on), then require this run's
    // measured compile and sequential Monte-Carlo times to land inside
    // the band. The slack factors making this fair across host speeds
    // are part of the model (`CostModel::mc_slack` / `compile_slack`).
    let envelope = cost_envelope(&device, &program, cfg.trials, &CostModel::default());
    let checks = [
        CostCheck {
            resource: "compile_ns",
            measured_ns: compile_ns,
            bound: envelope.compile_ns,
        },
        CostCheck {
            resource: "mc_ns",
            measured_ns: bp * cfg.trials as f64,
            bound: envelope.mc_ns,
        },
    ];
    let envelope_violations = violations("run_trials/bv-16/ibm-q20/baseline", &checks);
    for v in &envelope_violations {
        eprintln!("bench_sim: envelope {v}");
    }
    let envelope_holds = envelope_violations.is_empty();
    eprintln!("envelope: {}", if envelope_holds { "HOLDS" } else { "VIOLATED" });

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"quva-bench-sim/v2\",\n");
    json.push_str("  \"workload\": \"run_trials/bv-16/ibm-q20/baseline\",\n");
    json.push_str(&format!("  \"trials\": {},\n", cfg.trials));
    json.push_str(&format!("  \"reps\": {},\n", cfg.reps));
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        // the bitparallel row carries its headline ratio so the gate
        // (and readers of the committed file) need not recompute it
        let extra = if row.name == "bitparallel" {
            format!(", \"speedup_vs_scalar\": {speedup_vs_scalar}")
        } else {
            String::new()
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"ns\": {}, \"ns_per_trial\": {}{extra}}}{comma}\n",
            row.name, row.threads, row.ns, row.ns_per_trial
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"envelope\": {{\"compile_lo_ns\": {}, \"compile_hi_ns\": {}, \"measured_compile_ns\": {}, \
         \"mc_lo_ns\": {}, \"mc_hi_ns\": {}, \"measured_mc_ns\": {}, \"holds\": {envelope_holds}}},\n",
        envelope.compile_ns.lo,
        envelope.compile_ns.hi,
        compile_ns,
        envelope.mc_ns.lo,
        envelope.mc_ns.hi,
        (bp * cfg.trials as f64) as u64,
    ));
    json.push_str(&format!("  \"obs_overhead\": {obs_overhead},\n"));
    json.push_str(&format!("  \"speedup_4t\": {speedup_4t}\n"));
    json.push_str("}\n");
    std::fs::write(&cfg.out, &json).unwrap_or_else(|e| die(&format!("cannot write {}: {e}", cfg.out)));
    println!(
        "wrote {} (bit-parallel {speedup_vs_scalar:.1}x vs scalar, {speedup_4t:.2}x at 4 threads)",
        cfg.out
    );

    if let Some(baseline) = &cfg.check {
        let text = std::fs::read_to_string(baseline)
            .unwrap_or_else(|e| die(&format!("cannot read baseline {baseline}: {e}")));
        let base = baseline_gate_ns_per_trial(&text, baseline);
        let limit = base * (1.0 + cfg.tolerance);
        // Confirm-on-fail: a shared CI runner can sit in a slow phase
        // for the whole first pass, so a miss is re-measured once with
        // doubled reps before failing — a genuine regression fails
        // both times, a throttling phase usually does not.
        let mut bp = bp;
        if bp > limit {
            eprintln!("bench_sim: bitparallel {bp:.3} ns/trial over limit {limit:.3} — re-measuring");
            let engine = McEngine::sequential();
            let retry = time_engine(&engine, &profile, cfg.trials, cfg.reps * 2);
            bp = bp.min(retry as f64 / cfg.trials as f64);
        }
        println!("regression gate: bitparallel {bp:.3} ns/trial vs baseline {base:.3} (limit {limit:.3})");
        if bp > limit {
            eprintln!(
                "bench_sim: FAIL — run_trials regressed {:.1}% (> {:.0}% tolerance)",
                (bp / base - 1.0) * 100.0,
                cfg.tolerance * 100.0
            );
            std::process::exit(1);
        }
        // Kernel-speedup gate: the bit-parallel kernel must hold a
        // >= 10x per-trial advantage over the scalar oracle. Judged
        // against the better of the same-run scalar row (host-state
        // independent: both sides saw the same thermal/scheduler
        // conditions) and the committed baseline's scalar row (the
        // acceptance reference; absent in pre-kernel v1 baselines).
        let committed_scalar = baseline_row_ns_per_trial(&text, "scalar");
        let vs_committed = committed_scalar.map(|s| s / bp);
        let mut speedup_vs_scalar = speedup_vs_scalar;
        let mut best_ratio = vs_committed.map_or(speedup_vs_scalar, |r| r.max(speedup_vs_scalar));
        if best_ratio < 10.0 {
            eprintln!("bench_sim: kernel ratio {best_ratio:.1}x below 10x — re-measuring");
            speedup_vs_scalar =
                speedup_vs_scalar.max(measure_kernel_ratio(&profile, cfg.trials, cfg.reps * 2));
            best_ratio = vs_committed.map_or(speedup_vs_scalar, |r| r.max(speedup_vs_scalar));
        }
        match vs_committed {
            Some(r) => println!(
                "kernel gate: bit-parallel {speedup_vs_scalar:.1}x vs same-run scalar, \
                 {r:.1}x vs committed scalar row (need >= 10x)"
            ),
            None => println!(
                "kernel gate: bit-parallel {speedup_vs_scalar:.1}x vs same-run scalar \
                 (baseline {baseline} predates the scalar row; need >= 10x)"
            ),
        }
        if best_ratio < 10.0 {
            eprintln!(
                "bench_sim: FAIL — bit-parallel kernel is only {best_ratio:.1}x faster than the \
                 scalar oracle (need >= 10x)"
            );
            std::process::exit(1);
        }
        if host_threads >= 4 {
            if speedup_4t < 2.0 {
                eprintln!(
                    "bench_sim: FAIL — {speedup_4t:.2}x speedup at 4 threads on a \
                     {host_threads}-CPU host (need >= 2x)"
                );
                std::process::exit(1);
            }
        } else {
            println!(
                "speedup_4t gate NOT ARMED: host_threads = {host_threads} (< 4 CPUs) — \
                 the >=2x@4-threads assertion was skipped, not passed"
            );
        }
        let mut obs_overhead = obs_overhead;
        if obs_overhead > 0.05 {
            eprintln!(
                "bench_sim: obs overhead {:.1}% over the 5% limit — re-measuring",
                obs_overhead * 100.0
            );
            obs_overhead = obs_overhead.min(measure_obs_overhead(&profile, cfg.trials, cfg.reps * 2));
        }
        if obs_overhead > 0.05 {
            eprintln!(
                "bench_sim: FAIL — disabled tracing costs {:.1}% over the reference loop (> 5%)",
                obs_overhead * 100.0
            );
            std::process::exit(1);
        }
        if !envelope_holds {
            eprintln!("bench_sim: FAIL — measured wall-clock escaped the default-model cost envelope");
            std::process::exit(1);
        }
        // Calibrate-predict-verify: the ns-per-event the committed
        // baseline implies must still bound this host's measurements.
        let events_per_trial = total_events(compiled.physical()) as f64;
        let calibrated = CostModel::from_bench(&text, events_per_trial).unwrap_or_else(|e| {
            die(&format!(
                "baseline {baseline} cannot calibrate the cost model: {e}"
            ))
        });
        let recal = cost_envelope(&device, &program, cfg.trials, &calibrated);
        let recal_checks = [
            CostCheck {
                resource: "compile_ns",
                measured_ns: compile_ns,
                bound: recal.compile_ns,
            },
            CostCheck {
                resource: "mc_ns",
                measured_ns: bp * cfg.trials as f64,
                bound: recal.mc_ns,
            },
        ];
        let recal_violations = violations("calibrated/bv-16/ibm-q20/baseline", &recal_checks);
        if !recal_violations.is_empty() {
            for v in &recal_violations {
                eprintln!("bench_sim: envelope {v}");
            }
            eprintln!("bench_sim: FAIL — measured wall-clock escaped the baseline-calibrated envelope");
            std::process::exit(1);
        }
        println!("envelope gate: PASS (default and baseline-calibrated models)");
        println!("regression gate: PASS");
    }
}
