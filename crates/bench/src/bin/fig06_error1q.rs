//! Regenerates Figure 6: single-qubit error-rate distribution.

fn main() {
    let (table, h) = quva_bench::characterization::fig06_error1q();
    println!("1Q error distribution (%):\n{}", h.render(40));
    quva_bench::io::report("fig06_error1q", "single-qubit error distribution", &table);
}
