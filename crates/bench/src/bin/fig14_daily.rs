//! Regenerates Figure 14: per-day VQA+VQM benefit for bv-16.

fn main() {
    let table = quva_bench::policy_eval::fig14_daily();
    quva_bench::io::report(
        "fig14_daily",
        "bv-16 benefit across 52 daily calibrations",
        &table,
    );
}
