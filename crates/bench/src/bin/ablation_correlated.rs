//! Ablation report: correlated-error robustness.

fn main() {
    let table = quva_bench::ablations::ablation_correlated_errors();
    quva_bench::io::report("ablation_correlated", "benefit under correlated bursts", &table);
}
