//! Extension: Monte-Carlo convergence to the analytic PST (the Fig. 10
//! estimator's quality as a function of trial count).
//!
//! The sweep shares one prebuilt [`FailureProfile`] across all trial
//! counts and runs on the parallel [`McEngine`] — the 1M-trial row is
//! the paper's headline estimator configuration, and the engine keeps
//! it bit-identical whatever the host's thread count is.

use quva::MappingPolicy;
use quva_device::Device;
use quva_sim::{CoherenceModel, FailureProfile, McEngine};
use quva_stats::{fmt3, Table};

fn main() {
    let device = Device::ibm_q20();
    let program = quva_benchmarks::bv(16);
    let compiled = MappingPolicy::vqa_vqm()
        .compile(&program, &device)
        .expect("bv-16 compiles");
    let exact = compiled
        .analytic_pst(&device, CoherenceModel::Disabled)
        .expect("routed")
        .pst;
    let profile =
        FailureProfile::new(&device, compiled.physical(), CoherenceModel::Disabled).expect("routed");
    let engine = McEngine::auto();

    let mut table = Table::new(["trials", "mc_pst", "std_error", "abs_error"]);
    for &trials in &[100u64, 1_000, 10_000, 100_000, 1_000_000] {
        let est = engine.run(&profile, trials, 7);
        table.row([
            trials.to_string(),
            format!("{:.5}", est.pst),
            format!("{:.5}", est.std_error()),
            format!("{:.5}", (est.pst - exact).abs()),
        ]);
    }
    table.row(["analytic".into(), fmt3(exact), "".into(), "".into()]);
    quva_bench::io::report(
        "ext_convergence",
        "Monte-Carlo convergence to analytic PST",
        &table,
    );
}
