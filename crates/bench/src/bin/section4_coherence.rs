//! Ablation report: section4_coherence.

fn main() {
    let table = quva_bench::ablations::section4_coherence();
    quva_bench::io::report("section4_coherence", "section4_coherence ablation", &table);
}
