//! Regenerates Figure 9: the IBM-Q20 spatial error map.

fn main() {
    let table = quva_bench::characterization::fig09_spatial();
    quva_bench::io::report("fig09_spatial", "IBM-Q20 per-link failure map", &table);
}
