//! Regenerates Figure 12: VQM / hop-limited VQM relative PST.

fn main() {
    let table = quva_bench::policy_eval::fig12_vqm();
    quva_bench::io::report("fig12_vqm", "VQM relative PST vs baseline", &table);
}
