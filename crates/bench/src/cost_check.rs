//! Envelope validation — the *verify* leg of the cost model's
//! calibrate-predict-verify loop.
//!
//! [`quva_analysis::cost_envelope`] predicts `[lo, hi]` wall-clock
//! bounds before a job runs; this module measures the job and judges
//! the prediction. `bench_sim` and `bench_serve` call [`measure_case`]
//! / [`violations`] as their envelope-validation stage (gated under
//! `--check`), the `cost_envelope` proptest sweeps the table-1 suite
//! across policies and seeded devices, and the deliberate
//! miscalibration test below proves the gate actually trips when the
//! model lies.
//!
//! The slack factors that make containment a fair test across CI hosts
//! live in the model itself ([`quva_analysis::CostModel::mc_slack`],
//! [`quva_analysis::CostModel::compile_slack`]) — this module adds no
//! hidden margin of its own.

use std::time::Instant;

use quva::MappingPolicy;
use quva_analysis::{cost_envelope, CostInterval, CostModel};
use quva_benchmarks::Benchmark;
use quva_device::Device;
use quva_sim::{CoherenceModel, FailureProfile, McEngine};

/// One resource's predicted-vs-measured comparison.
#[derive(Debug, Clone)]
pub struct CostCheck {
    /// Which envelope component was measured (`"compile_ns"`, `"mc_ns"`).
    pub resource: &'static str,
    /// Measured wall-clock, nanoseconds.
    pub measured_ns: f64,
    /// The predicted `[lo, hi]` bound the measurement must fall inside.
    pub bound: CostInterval,
}

impl CostCheck {
    /// Whether the measurement fell inside the predicted bound.
    pub fn holds(&self) -> bool {
        self.bound.contains(self.measured_ns)
    }
}

/// Compiles `bench` with `policy` and (when `trials > 0`) runs the
/// sequential Monte-Carlo engine, timing both stages against the
/// envelope predicted *before* either ran. The Monte-Carlo stage takes
/// the best of one warmed rep, matching how `bench_sim` times the same
/// loop.
pub fn measure_case(
    device: &Device,
    bench: &Benchmark,
    policy: &MappingPolicy,
    trials: u64,
    model: &CostModel,
) -> Vec<CostCheck> {
    let envelope = cost_envelope(device, bench.circuit(), trials, model);

    let start = Instant::now();
    let compiled = policy
        .compile(bench.circuit(), device)
        .unwrap_or_else(|e| panic!("{} failed to compile {}: {e}", policy.name(), bench.name()));
    let compile_ns = start.elapsed().as_nanos() as f64;
    let mut checks = vec![CostCheck {
        resource: "compile_ns",
        measured_ns: compile_ns,
        bound: envelope.compile_ns,
    }];

    if trials > 0 {
        let profile = FailureProfile::new(device, compiled.physical(), CoherenceModel::Disabled)
            .unwrap_or_else(|e| panic!("compiled {} is routed: {e}", bench.name()));
        let engine = McEngine::sequential();
        engine.run(&profile, trials, 1); // warm-up, untimed
        let start = Instant::now();
        std::hint::black_box(engine.run(&profile, trials, 1));
        checks.push(CostCheck {
            resource: "mc_ns",
            measured_ns: start.elapsed().as_nanos() as f64,
            bound: envelope.mc_ns,
        });
    }
    checks
}

/// Renders every failed check as a human-readable line; an empty vec
/// means the envelope held for all measured resources.
pub fn violations(label: &str, checks: &[CostCheck]) -> Vec<String> {
    checks
        .iter()
        .filter(|c| !c.holds())
        .map(|c| {
            format!(
                "{label}: measured {} {:.0} ns outside predicted [{:.0}, {:.0}]",
                c.resource, c.measured_ns, c.bound.lo, c.bound.hi
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_model_passes_and_miscalibrated_model_trips_the_gate() {
        let device = Device::ibm_q20();
        let bench = Benchmark::bv(8);
        let policy = MappingPolicy::vqm();

        // A model claiming each fault event costs 10 us with no slack:
        // the *optimistic* Monte-Carlo bound alone is seconds, so any
        // real measurement lands below `lo` and the gate must trip —
        // deterministically, on any host speed.
        let lying = CostModel {
            ns_per_event: 1.0e4,
            mc_slack: 1.0,
            ..CostModel::default()
        };
        let checks = measure_case(&device, &bench, &policy, 20_000, &lying);
        assert!(
            checks.iter().any(|c| c.resource == "mc_ns" && !c.holds()),
            "miscalibrated model went undetected: {checks:?}"
        );
        assert!(!violations("bv-8/vqm", &checks).is_empty());

        // The defaults (calibrated against the committed BENCH_sim
        // baseline) must hold on the same case.
        let honest = measure_case(&device, &bench, &policy, 20_000, &CostModel::default());
        let bad = violations("bv-8/vqm", &honest);
        assert!(bad.is_empty(), "{bad:?}");
    }

    #[test]
    fn zero_trials_checks_compile_only() {
        let device = Device::ibm_q5();
        let checks = measure_case(
            &device,
            &Benchmark::ghz(4),
            &MappingPolicy::baseline(),
            0,
            &CostModel::default(),
        );
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].resource, "compile_ns");
        assert!(checks[0].holds(), "{checks:?}");
    }
}
