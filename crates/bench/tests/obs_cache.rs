//! Cache observability contract of the policy-evaluation memos.
//!
//! These tests own the process-global `quva-obs` recorder, so they live
//! in their own integration-test binary and serialize on a local mutex.
//! The memo caches are also process-global: each test uses a device
//! calibration no other test in this binary touches, so its cache keys
//! are guaranteed cold on first evaluation.

use std::sync::{Mutex, MutexGuard};

use quva::MappingPolicy;
use quva_bench::policy_eval::{esp_interval_of, pst_of};
use quva_benchmarks::Benchmark;
use quva_device::{Calibration, Device, Topology};

fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// A device with a calibration signature unique to `err_2q`, so each
/// test owns a disjoint slice of the process-wide memo caches.
fn fresh_device(err_2q: f64) -> Device {
    Device::new(Topology::grid(4, 5), |t| {
        Calibration::uniform(t, err_2q, 0.0015, 0.025)
    })
}

fn counter(report: &quva_obs::TraceReport, name: &str) -> u64 {
    report.counters.get(name).copied().unwrap_or(0)
}

#[test]
fn repeated_pst_evaluation_is_a_cache_hit() {
    let _g = guard();
    let device = fresh_device(0.021);
    let bench = Benchmark::bv(6);

    quva_obs::reset();
    quva_obs::enable();
    let first = pst_of(MappingPolicy::vqm(), &bench, &device);
    let cold = quva_obs::drain();
    let second = pst_of(MappingPolicy::vqm(), &bench, &device);
    let warm = quva_obs::drain();
    quva_obs::disable();

    assert_eq!(first.to_bits(), second.to_bits());
    assert_eq!(counter(&cold, "cache.pst.miss"), 1);
    assert_eq!(counter(&cold, "cache.pst.insert"), 1);
    assert_eq!(counter(&cold, "cache.pst.hit"), 0);
    assert_eq!(counter(&warm, "cache.pst.hit"), 1);
    assert_eq!(counter(&warm, "cache.pst.miss"), 0);
    assert_eq!(counter(&warm, "cache.pst.insert"), 0);
}

#[test]
fn repeated_esp_evaluation_is_a_cache_hit() {
    let _g = guard();
    let device = fresh_device(0.023);
    let bench = Benchmark::bv(6);

    quva_obs::reset();
    quva_obs::enable();
    let first = esp_interval_of(MappingPolicy::baseline(), &bench, &device);
    let cold = quva_obs::drain();
    let second = esp_interval_of(MappingPolicy::baseline(), &bench, &device);
    let warm = quva_obs::drain();
    quva_obs::disable();

    assert_eq!(first, second);
    assert_eq!(counter(&cold, "cache.esp.miss"), 1);
    assert_eq!(counter(&cold, "cache.esp.insert"), 1);
    assert_eq!(counter(&warm, "cache.esp.hit"), 1);
    assert_eq!(counter(&warm, "cache.esp.miss"), 0);
}

#[test]
fn distinct_devices_do_not_share_cache_entries() {
    let _g = guard();
    let bench = Benchmark::bv(6);
    let a = fresh_device(0.027);
    let b = fresh_device(0.029);

    quva_obs::reset();
    quva_obs::enable();
    pst_of(MappingPolicy::vqm(), &bench, &a);
    pst_of(MappingPolicy::vqm(), &bench, &b);
    let report = quva_obs::drain();
    quva_obs::disable();

    assert_eq!(
        counter(&report, "cache.pst.miss"),
        2,
        "different calibrations must not alias"
    );
    assert_eq!(counter(&report, "cache.pst.hit"), 0);
}
