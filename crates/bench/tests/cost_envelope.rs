//! Envelope soundness: measured wall-clock must land inside the
//! statically predicted [`quva_analysis::CostEnvelope`].
//!
//! The deterministic sweep covers the acceptance criterion directly —
//! table-1 suite × the four policies on the stock IBM-Q20, quick-mode
//! trials — and the proptest re-runs random slices of that matrix on
//! *seeded* synthetic calibrations, checking the prediction is sound
//! for any device the generator can produce, not just the shipped one.
//! The slack factors making this fair across host speeds are part of
//! the model ([`quva_analysis::CostModel::mc_slack`] /
//! [`quva_analysis::CostModel::compile_slack`]), not hidden here.

use proptest::prelude::*;
use quva::MappingPolicy;
use quva_analysis::CostModel;
use quva_bench::cost_check::{measure_case, violations};
use quva_benchmarks::table1_suite;
use quva_device::{CalibrationGenerator, Device, Topology, VariationProfile};

const QUICK_TRIALS: u64 = 2_000;

fn policies() -> [MappingPolicy; 4] {
    [
        MappingPolicy::baseline(),
        MappingPolicy::vqm(),
        MappingPolicy::vqm_hop_limited(),
        MappingPolicy::vqa_vqm(),
    ]
}

#[test]
fn suite_times_four_policies_stay_inside_the_envelope_on_stock_q20() {
    let device = Device::ibm_q20();
    let model = CostModel::default();
    let mut bad = Vec::new();
    for bench in table1_suite() {
        for policy in policies() {
            let checks = measure_case(&device, &bench, &policy, QUICK_TRIALS, &model);
            bad.extend(violations(
                &format!("{}/{}", bench.name(), policy.name()),
                &checks,
            ));
        }
    }
    assert!(bad.is_empty(), "envelope violated:\n{}", bad.join("\n"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seeded q20 calibration: the prediction depends only on the
    /// topology, so it must bound the measurement no matter which
    /// snapshot the generator dealt.
    #[test]
    fn measured_cost_lies_within_the_envelope_on_seeded_devices(
        (seed, bench_ix, policy_ix) in (0u64..1_000_000, 0usize..16, 0usize..4)
    ) {
        let topology = Topology::ibm_q20_tokyo();
        let mut generator = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), seed);
        let cal = generator.snapshot(&topology);
        let device = Device::new(topology, |_| cal);
        let suite = table1_suite();
        let bench = &suite[bench_ix % suite.len()];
        let policy = &policies()[policy_ix % 4];
        let checks = measure_case(&device, bench, policy, QUICK_TRIALS, &CostModel::default());
        let bad = violations(&format!("{}/{}", bench.name(), policy.name()), &checks);
        prop_assert!(bad.is_empty(), "{bad:?}");
    }
}
