//! One benchmark per paper artifact: times the regeneration of each
//! table/figure (the printed values themselves come from the
//! corresponding `--bin` targets and `run_all`).

use criterion::{criterion_group, criterion_main, Criterion};
use quva_bench::{characterization, policy_eval, real_system};

fn bench_characterization_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig05_coherence", |b| b.iter(characterization::fig05_coherence));
    group.bench_function("fig06_error1q", |b| b.iter(characterization::fig06_error1q));
    group.bench_function("fig07_error2q", |b| b.iter(characterization::fig07_error2q));
    group.bench_function("fig08_temporal", |b| b.iter(characterization::fig08_temporal));
    group.bench_function("fig09_spatial", |b| b.iter(characterization::fig09_spatial));
    group.finish();
}

fn bench_policy_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("table1_benchmarks", |b| b.iter(policy_eval::table1_benchmarks));
    group.bench_function("fig12_vqm", |b| b.iter(policy_eval::fig12_vqm));
    group.bench_function("table2_error_scaling", |b| {
        b.iter(policy_eval::table2_error_scaling)
    });
    group.finish();
}

fn bench_real_system_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("table3_ibmq5", |b| b.iter(|| real_system::table3_ibmq5(1)));
    group.bench_function("fig16_partitioning", |b| b.iter(real_system::fig16_partitioning));
    group.finish();
}

criterion_group!(
    benches,
    bench_characterization_figures,
    bench_policy_figures,
    bench_real_system_figures
);
criterion_main!(benches);
