//! Compile-time benchmarks: allocation + routing cost of each policy.

use criterion::{criterion_group, criterion_main, Criterion};
use quva::MappingPolicy;
use quva_device::Device;
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let device = Device::ibm_q20();
    let bv16 = quva_benchmarks::bv(16);
    let qft12 = quva_benchmarks::qft(12);

    let mut group = c.benchmark_group("compile");
    for (name, program) in [("bv-16", &bv16), ("qft-12", &qft12)] {
        for (policy_name, policy) in [
            ("baseline", MappingPolicy::baseline()),
            ("vqm", MappingPolicy::vqm()),
            ("vqm-mah4", MappingPolicy::vqm_hop_limited()),
            ("vqa-vqm", MappingPolicy::vqa_vqm()),
        ] {
            group.bench_function(format!("{policy_name}/{name}"), |b| {
                b.iter(|| policy.compile(black_box(program), black_box(&device)).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_allocation_components(c: &mut Criterion) {
    let device = Device::ibm_q20();
    c.bench_function("strongest_subgraph/k=10", |b| {
        b.iter(|| quva_device::strongest_subgraph(black_box(&device), 10))
    });
    c.bench_function("node_strengths/q20", |b| {
        b.iter(|| quva_device::node_strengths(black_box(&device)))
    });
}

criterion_group!(benches, bench_policies, bench_allocation_components);
criterion_main!(benches);
