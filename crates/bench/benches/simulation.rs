//! Simulator throughput: analytic PST, Monte-Carlo fault injection, and
//! noisy state-vector trials.

use criterion::{criterion_group, criterion_main, Criterion};
use quva::MappingPolicy;
use quva_device::Device;
use quva_sim::{
    analytic_pst, monte_carlo_pst, run_noisy_trials, run_trials, CoherenceModel, FailureProfile, McEngine,
};
use std::hint::black_box;

fn bench_estimators(c: &mut Criterion) {
    let device = Device::ibm_q20();
    let compiled = MappingPolicy::baseline()
        .compile(&quva_benchmarks::bv(16), &device)
        .unwrap();
    let physical = compiled.physical().clone();

    c.bench_function("analytic_pst/bv-16", |b| {
        b.iter(|| {
            analytic_pst(
                black_box(&device),
                black_box(&physical),
                CoherenceModel::IdleWindow,
            )
            .unwrap()
        })
    });
    c.bench_function("monte_carlo/bv-16/10k-trials", |b| {
        b.iter(|| {
            monte_carlo_pst(
                black_box(&device),
                black_box(&physical),
                10_000,
                1,
                CoherenceModel::Disabled,
            )
            .unwrap()
        })
    });
}

/// Sequential vs chunk-parallel Monte-Carlo trial loops. Every engine
/// configuration samples the identical estimate, so these rows compare
/// pure wall-clock; `bench_sim` emits the same measurements as
/// machine-readable `BENCH_sim.json` for the CI regression gate.
fn bench_parallel_engine(c: &mut Criterion) {
    let device = Device::ibm_q20();
    let compiled = MappingPolicy::baseline()
        .compile(&quva_benchmarks::bv(16), &device)
        .unwrap();
    let profile = FailureProfile::new(&device, compiled.physical(), CoherenceModel::Disabled).unwrap();
    const TRIALS: u64 = 200_000;

    let mut group = c.benchmark_group("run_trials/bv-16/200k");
    group.bench_function("sequential", |b| {
        b.iter(|| run_trials(black_box(&profile), TRIALS, 1))
    });
    for threads in [1usize, 2, 4, 8] {
        let engine = McEngine::new(threads);
        group.bench_function(format!("threads-{threads}"), |b| {
            b.iter(|| engine.run(black_box(&profile), TRIALS, 1))
        });
    }
    group.finish();
}

fn bench_statevector(c: &mut Criterion) {
    let device = Device::ibm_q5();
    let bench = quva_benchmarks::Benchmark::ghz(3);
    let compiled = MappingPolicy::vqa_vqm()
        .compile(bench.circuit(), &device)
        .unwrap();
    let physical = compiled.physical().clone();
    c.bench_function("noisy_statevector/ghz-3/1k-trials", |b| {
        b.iter(|| run_noisy_trials(black_box(&device), black_box(&physical), 1000, 3).unwrap())
    });
}

fn bench_density_matrix(c: &mut Criterion) {
    let device = Device::ibm_q5();
    let bench = quva_benchmarks::Benchmark::bv(4);
    let compiled = MappingPolicy::vqa_vqm()
        .compile(bench.circuit(), &device)
        .unwrap();
    let physical = compiled.physical().clone();
    c.bench_function("exact_noisy_distribution/bv-4", |b| {
        b.iter(|| quva_sim::exact_noisy_distribution(black_box(&device), black_box(&physical)).unwrap())
    });
    c.bench_function("crosstalk_analytic/bv-16-on-q20", |b| {
        let q20 = Device::ibm_q20();
        let program = quva_benchmarks::bv(16);
        let compiled = MappingPolicy::baseline().compile(&program, &q20).unwrap();
        let phys = compiled.physical().clone();
        b.iter(|| {
            quva_sim::analytic_pst_with_crosstalk(
                black_box(&q20),
                black_box(&phys),
                CoherenceModel::Disabled,
                quva_sim::CrosstalkModel::default(),
            )
            .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_estimators,
    bench_parallel_engine,
    bench_statevector,
    bench_density_matrix
);
criterion_main!(benches);
