//! Device-substrate benchmarks: calibration generation and the graph
//! machinery the policies lean on.

use criterion::{criterion_group, criterion_main, Criterion};
use quva_device::{CalibrationGenerator, HopMatrix, ReliabilityMatrix, Topology, VariationProfile};
use std::hint::black_box;

fn bench_calibration(c: &mut Criterion) {
    let topo = Topology::ibm_q20_tokyo();
    c.bench_function("calibration/snapshot", |b| {
        let mut g = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 1);
        b.iter(|| g.snapshot(black_box(&topo)))
    });
    c.bench_function("calibration/daily-series-52", |b| {
        let mut g = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 1);
        b.iter(|| g.daily_series(black_box(&topo), 52))
    });
}

fn bench_matrices(c: &mut Criterion) {
    let topo = Topology::ibm_q20_tokyo();
    c.bench_function("hop_matrix/q20", |b| b.iter(|| HopMatrix::of(black_box(&topo))));
    c.bench_function("reliability_matrix/q20", |b| {
        b.iter(|| ReliabilityMatrix::of(black_box(&topo), |id| 0.5 + (id % 7) as f64 * 0.1))
    });
}

criterion_group!(benches, bench_calibration, bench_matrices);
criterion_main!(benches);
