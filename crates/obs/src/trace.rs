//! Drained trace data: records, deterministic metrics rendering, and
//! Chrome `trace_event` JSON export.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A closed span: one Chrome `X` (complete) event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Category (Chrome `cat`), e.g. `"compile"` or `"sim"`.
    pub cat: String,
    /// Event name, e.g. `"compile.route"`.
    pub name: String,
    /// Start, in microseconds since the recorder epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Recorder-assigned thread id (dense, starts at 0).
    pub tid: u64,
}

/// A warn-level instant event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarnRecord {
    /// Category, e.g. `"router"` or `"calibration"`.
    pub cat: String,
    /// Human-readable diagnostic.
    pub message: String,
    /// Timestamp, in microseconds since the recorder epoch.
    pub ts_us: u64,
    /// Recorder-assigned thread id.
    pub tid: u64,
}

/// Count/sum/min/max reduction of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Folds one observation in.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another histogram in (order-independent for
    /// `count`/`min`/`max`; `sum` is f64 addition).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Everything one [`crate::drain`] call took out of the recorder.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Closed spans, sorted by (start, tid, longest-first).
    pub spans: Vec<SpanRecord>,
    /// Final counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Warn events, sorted by timestamp.
    pub warnings: Vec<WarnRecord>,
}

/// Aggregate over all spans sharing a name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanTotal {
    /// Number of spans with this name.
    pub calls: u64,
    /// Total duration across them, in microseconds.
    pub total_us: u64,
}

impl TraceReport {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.histograms.is_empty()
            && self.warnings.is_empty()
    }

    /// Per-name span aggregates (calls and total duration), keyed and
    /// ordered by span name.
    pub fn span_totals(&self) -> BTreeMap<String, SpanTotal> {
        let mut totals: BTreeMap<String, SpanTotal> = BTreeMap::new();
        for s in &self.spans {
            let t = totals.entry(s.name.clone()).or_default();
            t.calls += 1;
            t.total_us += s.dur_us;
        }
        totals
    }

    /// Renders the **deterministic** metrics section: counters,
    /// histograms, and warn events — never timestamps or durations.
    /// For a deterministic workload this output is byte-identical
    /// across runs and thread counts.
    pub fn render_metrics_text(&self) -> String {
        let mut out = String::from("metrics:\n");
        if self.counters.is_empty() && self.histograms.is_empty() && self.warnings.is_empty() {
            out.push_str("  (none)\n");
            return out;
        }
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  counter {name} = {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  histogram {name}: count {} min {:.6} mean {:.6} max {:.6}",
                h.count,
                h.min,
                h.mean(),
                h.max
            );
        }
        let mut warns: Vec<&WarnRecord> = self.warnings.iter().collect();
        warns.sort_by(|a, b| (a.cat.as_str(), a.message.as_str()).cmp(&(b.cat.as_str(), b.message.as_str())));
        for w in warns {
            let _ = writeln!(out, "  warn [{}] {}", w.cat, w.message);
        }
        out
    }

    /// Renders the human-facing profile: a per-span timing table
    /// (wall-clock — *not* deterministic) followed by the metrics
    /// section.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let totals = self.span_totals();
        if !totals.is_empty() {
            out.push_str("span                              calls    total_ms     mean_ms\n");
            for (name, t) in &totals {
                let total_ms = t.total_us as f64 / 1_000.0;
                let mean_ms = if t.calls == 0 {
                    0.0
                } else {
                    total_ms / t.calls as f64
                };
                let _ = writeln!(out, "{name:<32} {:>6} {total_ms:>11.3} {mean_ms:>11.3}", t.calls);
            }
        }
        out.push_str(&self.render_metrics_text());
        out
    }

    /// Serializes as Chrome `trace_event` JSON (the `{"traceEvents":
    /// [...]}` object form), loadable in Perfetto or `chrome://tracing`.
    ///
    /// Spans become `X` (complete) events, counters and histogram
    /// means become `C` (counter) samples at the end of the trace, and
    /// warn events become `I` (instant) events.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        for s in &self.spans {
            events.push(format!(
                "{{\"name\": {}, \"cat\": {}, \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
                json_str(&s.name),
                json_str(&s.cat),
                s.start_us,
                s.dur_us,
                s.tid
            ));
        }
        let end_ts = self
            .spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .chain(self.warnings.iter().map(|w| w.ts_us))
            .max()
            .unwrap_or(0);
        for (name, v) in &self.counters {
            events.push(format!(
                "{{\"name\": {}, \"ph\": \"C\", \"ts\": {end_ts}, \"pid\": 1, \"tid\": 0, \
                 \"args\": {{\"value\": {v}}}}}",
                json_str(name)
            ));
        }
        for (name, h) in &self.histograms {
            events.push(format!(
                "{{\"name\": {}, \"ph\": \"C\", \"ts\": {end_ts}, \"pid\": 1, \"tid\": 0, \
                 \"args\": {{\"value\": {}}}}}",
                json_str(name),
                json_num(h.mean())
            ));
        }
        for w in &self.warnings {
            events.push(format!(
                "{{\"name\": {}, \"cat\": \"warn\", \"ph\": \"I\", \"ts\": {}, \"pid\": 1, \"tid\": {}, \
                 \"s\": \"t\", \"args\": {{\"message\": {}}}}}",
                json_str(&w.cat),
                w.ts_us,
                w.tid,
                json_str(&w.message)
            ));
        }
        let mut out = String::from("{\n\"traceEvents\": [\n");
        out.push_str(&events.join(",\n"));
        out.push_str("\n]\n}\n");
        out
    }
}

/// JSON string literal with escaping for quotes, backslashes, and
/// control characters.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: finite floats as shortest-roundtrip decimal; non-finite
/// values (invalid in JSON) clamp to 0.
fn json_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    // "{}" prints integral floats without a dot; still a JSON number
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TraceReport {
        let mut counters = BTreeMap::new();
        counters.insert("route.swaps_inserted".to_string(), 7u64);
        let mut histograms = BTreeMap::new();
        let mut h = Histogram::default();
        h.record(1.0);
        h.record(2.0);
        histograms.insert("alloc.region_size".to_string(), h);
        TraceReport {
            spans: vec![
                SpanRecord {
                    cat: "compile".to_string(),
                    name: "compile.route".to_string(),
                    start_us: 10,
                    dur_us: 100,
                    tid: 0,
                },
                SpanRecord {
                    cat: "compile".to_string(),
                    name: "compile.route".to_string(),
                    start_us: 120,
                    dur_us: 50,
                    tid: 0,
                },
            ],
            counters,
            histograms,
            warnings: vec![WarnRecord {
                cat: "router".to_string(),
                message: "fell back to \"hops\"".to_string(),
                ts_us: 15,
                tid: 0,
            }],
        }
    }

    #[test]
    fn metrics_text_has_no_timestamps() {
        let text = sample_report().render_metrics_text();
        assert!(text.contains("counter route.swaps_inserted = 7"));
        assert!(text.contains("histogram alloc.region_size: count 2 min 1.000000 mean 1.500000 max 2.000000"));
        assert!(text.contains("warn [router] fell back to \"hops\""));
        assert!(
            !text.contains("10"),
            "timestamps must not leak into metrics: {text}"
        );
    }

    #[test]
    fn span_totals_aggregate_by_name() {
        let totals = sample_report().span_totals();
        let t = totals.get("compile.route").copied().unwrap_or_default();
        assert_eq!(t.calls, 2);
        assert_eq!(t.total_us, 150);
    }

    #[test]
    fn chrome_json_is_valid_and_typed() {
        let json = sample_report().to_chrome_json();
        let stats = crate::validate_chrome_trace(&json).unwrap();
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.counters, 2); // one counter + one histogram sample
        assert_eq!(stats.instants, 1);
    }

    #[test]
    fn chrome_json_escapes_strings() {
        let json = sample_report().to_chrome_json();
        assert!(json.contains("fell back to \\\"hops\\\""));
    }

    #[test]
    fn empty_report_renders_and_exports() {
        let r = TraceReport::default();
        assert!(r.is_empty());
        assert_eq!(r.render_metrics_text(), "metrics:\n  (none)\n");
        let stats = crate::validate_chrome_trace(&r.to_chrome_json()).unwrap();
        assert_eq!(stats.events, 0);
    }
}
