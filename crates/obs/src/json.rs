//! Minimal JSON parsing and Chrome `trace_event` validation.
//!
//! The workspace vendors no serde; this recursive-descent parser covers
//! exactly what trace validation needs (objects, arrays, strings,
//! numbers, booleans, null) and powers the CI `observability` job's
//! structural checks: every event well-typed, no negative durations,
//! and complete (`X`) spans properly nested per thread.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean inside, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Maximum container nesting depth [`parse_json`] accepts. Inputs may
/// come from untrusted sources (network frames, on-disk traces); the
/// recursive-descent parser must return an error on `[[[[…` bombs
/// instead of overflowing the stack, which would abort the process.
pub const MAX_JSON_DEPTH: usize = 64;

/// Parses a complete JSON document. Errors carry a byte offset.
/// Container nesting beyond [`MAX_JSON_DEPTH`] is a parse error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    if depth > MAX_JSON_DEPTH {
        return Err(format!(
            "nesting depth exceeds {MAX_JSON_DEPTH} at byte {pos}",
            pos = *pos
        ));
    }
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(JsonValue::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number".to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // copy a full utf-8 scalar, not a byte
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "non-utf8 string".to_string())?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| "unterminated string".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

/// Structural statistics of a validated Chrome trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events.
    pub events: usize,
    /// `X` (complete span) events.
    pub spans: usize,
    /// `C` (counter) events.
    pub counters: usize,
    /// `I` (instant) events.
    pub instants: usize,
    /// Distinct `(pid, tid)` lanes seen.
    pub threads: usize,
    /// Deepest span nesting across all lanes (1 = no nesting).
    pub max_depth: usize,
}

/// Validates Chrome `trace_event` JSON structurally:
///
/// * the document parses and is `{"traceEvents": [...]}`;
/// * every event has string `name`/`ph` and numeric non-negative
///   `ts`/`pid`/`tid`, with `ph` one of `X`, `C`, `I`;
/// * every `X` event has a non-negative `dur`;
/// * per `(pid, tid)` lane, `X` spans nest properly — each span lies
///   entirely inside (or entirely outside) every other.
///
/// Returns structural statistics on success.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| "missing \"traceEvents\" array".to_string())?;

    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    // (pid, tid) -> spans as (ts, dur)
    let mut lanes: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let ctx = |what: &str| format!("event {i}: {what}");
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("missing string \"name\""))?;
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("missing string \"ph\""))?;
        let num_field = |field: &str| -> Result<u64, String> {
            let v = ev
                .get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| ctx(&format!("missing numeric \"{field}\"")))?;
            if v < 0.0 {
                return Err(ctx(&format!("negative \"{field}\" ({v}) in \"{name}\"")));
            }
            Ok(v as u64)
        };
        let ts = num_field("ts")?;
        let pid = num_field("pid")?;
        let tid = num_field("tid")?;
        match ph {
            "X" => {
                stats.spans += 1;
                let dur = num_field("dur")?;
                lanes.entry((pid, tid)).or_default().push((ts, dur));
            }
            "C" => stats.counters += 1,
            "I" => stats.instants += 1,
            other => return Err(ctx(&format!("unsupported phase {other:?} in \"{name}\""))),
        }
    }

    // nesting check per lane: sort (start asc, longest first) and walk
    // a stack of open intervals; every span must fit inside the top
    for ((pid, tid), mut spans) in lanes {
        spans.sort_by_key(|&(ts, dur)| (ts, std::cmp::Reverse(dur)));
        let mut stack: Vec<(u64, u64)> = Vec::new(); // (start, end)
        for (ts, dur) in spans {
            let end = ts + dur;
            while let Some(&(_, open_end)) = stack.last() {
                if open_end <= ts {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(_, open_end)) = stack.last() {
                if end > open_end {
                    return Err(format!(
                        "lane (pid {pid}, tid {tid}): span [{ts}, {end}) overlaps enclosing span \
                         ending at {open_end} without nesting"
                    ));
                }
            }
            stack.push((ts, end));
            stats.max_depth = stats.max_depth.max(stack.len());
        }
        stats.threads += 1;
    }

    Ok(stats)
}

/// Reduces Chrome trace JSON to a timestamp-free schema summary: per
/// phase, the sorted union of member keys (dotting into `args`) and the
/// sorted set of event names. Two traces of the same workload produce
/// identical summaries even though timestamps differ — the anchor for
/// golden-file schema tests.
pub fn schema_summary(text: &str) -> Result<String, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| "missing \"traceEvents\" array".to_string())?;

    // phase -> (key set, name set)
    let mut phases: BTreeMap<String, (BTreeSet<String>, BTreeSet<String>)> = BTreeMap::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "event missing \"ph\"".to_string())?;
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "event missing \"name\"".to_string())?;
        let entry = phases.entry(ph.to_string()).or_default();
        entry.1.insert(name.to_string());
        if let JsonValue::Obj(members) = ev {
            for (key, value) in members {
                if key == "args" {
                    if let JsonValue::Obj(args) = value {
                        for (arg_key, _) in args {
                            entry.0.insert(format!("args.{arg_key}"));
                        }
                        continue;
                    }
                }
                entry.0.insert(key.clone());
            }
        }
    }

    let mut out = String::new();
    for (ph, (keys, names)) in &phases {
        let keys: Vec<&str> = keys.iter().map(String::as_str).collect();
        let names: Vec<&str> = names.iter().map(String::as_str).collect();
        let _ = writeln!(out, "phase {ph} keys=[{}]", keys.join(","));
        let _ = writeln!(out, "phase {ph} names=[{}]", names.join(","));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = parse_json(r#"{"a": [1, -2.5, "x\ny", true, null], "b": {"c": 3e2}}"#).unwrap();
        let arr = doc.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(arr[3], JsonValue::Bool(true));
        assert_eq!(arr[4], JsonValue::Null);
        assert_eq!(
            doc.get("b").and_then(|b| b.get("c")).and_then(JsonValue::as_f64),
            Some(300.0)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a": }"#).is_err());
        assert!(parse_json(r#"{"a": 1} trailing"#).is_err());
        assert!(parse_json(r#""unterminated"#).is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // A nesting bomb must come back as Err, never abort the process.
        for open in ["[", "{\"k\":"] {
            let bomb = open.repeat(100_000);
            let err = parse_json(&bomb).unwrap_err();
            assert!(err.contains("nesting depth"), "unexpected error: {err}");
        }
        // Exactly at the limit still parses.
        let depth = MAX_JSON_DEPTH;
        let ok = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(parse_json(&ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(depth + 1), "]".repeat(depth + 1));
        assert!(parse_json(&too_deep).is_err());
    }

    #[test]
    fn validates_a_well_formed_trace() {
        let json = r#"{"traceEvents": [
            {"name": "outer", "cat": "t", "ph": "X", "ts": 0, "dur": 100, "pid": 1, "tid": 0},
            {"name": "inner", "cat": "t", "ph": "X", "ts": 10, "dur": 20, "pid": 1, "tid": 0},
            {"name": "c", "ph": "C", "ts": 100, "pid": 1, "tid": 0, "args": {"value": 3}},
            {"name": "w", "cat": "warn", "ph": "I", "ts": 5, "pid": 1, "tid": 0, "s": "t",
             "args": {"message": "m"}}
        ]}"#;
        let stats = validate_chrome_trace(json).unwrap();
        assert_eq!(stats.events, 4);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.max_depth, 2);
    }

    #[test]
    fn rejects_overlapping_spans_in_one_lane() {
        let json = r#"{"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": 50, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 25, "dur": 50, "pid": 1, "tid": 0}
        ]}"#;
        let err = validate_chrome_trace(json).unwrap_err();
        assert!(err.contains("overlaps"), "unexpected error: {err}");
    }

    #[test]
    fn accepts_overlap_across_lanes() {
        let json = r#"{"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": 50, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 25, "dur": 50, "pid": 1, "tid": 1}
        ]}"#;
        let stats = validate_chrome_trace(json).unwrap();
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.max_depth, 1);
    }

    #[test]
    fn rejects_negative_duration_and_bad_phase() {
        let neg = r#"{"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(neg).unwrap_err().contains("negative"));
        let phase = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(phase)
            .unwrap_err()
            .contains("unsupported phase"));
    }

    #[test]
    fn schema_summary_ignores_timestamps() {
        let a = r#"{"traceEvents": [
            {"name": "s", "cat": "t", "ph": "X", "ts": 1, "dur": 2, "pid": 1, "tid": 0}
        ]}"#;
        let b = r#"{"traceEvents": [
            {"name": "s", "cat": "t", "ph": "X", "ts": 900, "dur": 7, "pid": 1, "tid": 0}
        ]}"#;
        let sa = schema_summary(a).unwrap();
        assert_eq!(sa, schema_summary(b).unwrap());
        assert!(sa.contains("phase X keys=[cat,dur,name,ph,pid,tid,ts]"));
        assert!(sa.contains("phase X names=[s]"));
    }
}
