//! # quva-obs — deterministic tracing and metrics for the quva pipeline
//!
//! A zero-dependency observability layer shared by the compiler
//! (`quva`), the Monte-Carlo engine (`quva-sim`), and the experiment
//! harness (`quva-bench`). It records three kinds of signal:
//!
//! * **spans** — RAII-guarded intervals with monotonic timestamps
//!   ([`span`]), exported as Chrome `trace_event` complete events;
//! * **counters** — named `u64` accumulators ([`counter`]), merged by
//!   addition so the result is independent of thread schedule;
//! * **histograms** — named `f64` observations ([`observe`]) reduced to
//!   count/sum/min/max;
//!
//! plus **warn events** ([`warn`]): structured diagnostics that are
//! capturable in traces without altering a command's stdout/stderr
//! contract.
//!
//! # Determinism contract
//!
//! Every thread records into a thread-local buffer; buffers merge into
//! the process-wide recorder on [`flush`] (worker threads call it as
//! their last act; [`drain`] flushes the calling thread, and a
//! thread-local destructor backstops threads that forget). Counter merging is `u64` addition — associative
//! and commutative — so for a deterministic workload the drained
//! counter values are **identical for every thread count and every
//! work-stealing schedule**. Histograms merged across threads are
//! order-independent in `count`/`min`/`max`; instrumented code
//! therefore only records histograms from deterministic (single-thread)
//! contexts when the value feeds the metrics report. Timestamps are
//! excluded from [`TraceReport::render_metrics_text`] for the same
//! reason.
//!
//! # Overhead contract
//!
//! The recorder defaults to **off**: every entry point first checks one
//! relaxed atomic ([`enabled`]) and returns without allocating. The
//! disabled-path cost is gated in `quva-bench`'s `bench_sim` (< 2 % on
//! the Monte-Carlo hot loop).
//!
//! # Examples
//!
//! ```
//! quva_obs::reset();
//! quva_obs::enable();
//! {
//!     let _s = quva_obs::span("compile", "compile.route");
//!     quva_obs::counter("route.swaps_inserted", 3);
//!     quva_obs::observe("route.excess_weight", 0.25);
//! }
//! let report = quva_obs::drain();
//! quva_obs::disable();
//! assert_eq!(report.counters["route.swaps_inserted"], 3);
//! assert_eq!(report.spans.len(), 1);
//! assert!(report.to_chrome_json().contains("\"ph\": \"X\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flight;
mod json;
mod trace;

pub use json::{parse_json, schema_summary, validate_chrome_trace, JsonValue, TraceStats, MAX_JSON_DEPTH};
pub use trace::{Histogram, SpanRecord, TraceReport, WarnRecord};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether the recorder is collecting. Relaxed is sufficient: the flag
/// gates best-effort telemetry, never data the computation depends on.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Process-wide recorder state, created on first use.
struct Shared {
    /// The monotonic origin every timestamp is relative to.
    epoch: Instant,
    /// Merged records from exited threads and [`drain`] flushes.
    data: Mutex<GlobalData>,
    /// Small sequential ids handed to recording threads.
    next_tid: AtomicU64,
    /// Bumped by [`reset`]; stale thread-local buffers from an earlier
    /// generation are discarded instead of merged.
    generation: AtomicU64,
}

#[derive(Default)]
struct GlobalData {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    warns: Vec<WarnRecord>,
}

impl GlobalData {
    fn absorb(&mut self, buf: &mut LocalData) {
        self.spans.append(&mut buf.spans);
        for (k, v) in std::mem::take(&mut buf.counters) {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in std::mem::take(&mut buf.hists) {
            self.hists.entry(k).or_default().merge(&h);
        }
        self.warns.append(&mut buf.warns);
    }
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        epoch: Instant::now(),
        data: Mutex::new(GlobalData::default()),
        next_tid: AtomicU64::new(0),
        generation: AtomicU64::new(0),
    })
}

/// Elapsed microseconds since the recorder epoch (monotonic).
fn now_us() -> u64 {
    (shared().epoch.elapsed().as_nanos() / 1_000) as u64
}

/// Recorder-assigned id of the calling thread (the buffer is created on
/// demand; stays 0 during thread teardown, when the TLS slot is gone).
pub(crate) fn local_tid() -> u64 {
    let mut tid = 0;
    with_local(|t, _| tid = t);
    tid
}

#[derive(Default)]
struct LocalData {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    warns: Vec<WarnRecord>,
}

/// Per-thread buffer; merges into the global recorder on thread exit.
struct LocalBuf {
    tid: u64,
    generation: u64,
    data: LocalData,
}

impl LocalBuf {
    fn new() -> Self {
        let sh = shared();
        LocalBuf {
            tid: sh.next_tid.fetch_add(1, Ordering::Relaxed),
            generation: sh.generation.load(Ordering::Relaxed),
            data: LocalData::default(),
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        let sh = shared();
        // a buffer from before the last reset() is stale test/command
        // state: discard it rather than polluting the new session
        if self.generation != sh.generation.load(Ordering::Relaxed) {
            return;
        }
        if let Ok(mut global) = sh.data.lock() {
            global.absorb(&mut self.data);
        }
    }
}

thread_local! {
    static LOCAL: RefCell<Option<LocalBuf>> = const { RefCell::new(None) };
}

/// Runs `f` against this thread's buffer (created or renewed on
/// demand). No-op during thread teardown, when the TLS slot is gone.
fn with_local<F: FnOnce(u64, &mut LocalData)>(f: F) {
    let _ = LOCAL.try_with(|cell| {
        let Ok(mut slot) = cell.try_borrow_mut() else {
            return; // re-entrant recording (e.g. from a Drop) is dropped
        };
        let current_gen = shared().generation.load(Ordering::Relaxed);
        let renew = slot.as_ref().is_some_and(|b| b.generation != current_gen);
        if renew {
            *slot = None; // stale generation: Drop discards it
        }
        let buf = slot.get_or_insert_with(LocalBuf::new);
        f(buf.tid, &mut buf.data);
    });
}

/// Turns the recorder on. Until [`disable`] (or [`reset`]), spans,
/// counters, histograms, and warn events are collected.
pub fn enable() {
    shared(); // pin the epoch before the first timestamp
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the recorder off. Already-collected records are kept until
/// [`drain`] or [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the recorder is currently collecting. One relaxed atomic
/// load — cheap enough for per-gate call sites; hot loops should still
/// hoist it once per run.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Disables the recorder and discards everything collected so far, in
/// every thread (stale thread-local buffers are dropped on their next
/// use or exit). The clean-slate primitive commands and tests start
/// sessions with.
pub fn reset() {
    disable();
    let sh = shared();
    sh.generation.fetch_add(1, Ordering::Relaxed);
    // drop this thread's buffer under the *new* generation: discarded
    let _ = LOCAL.try_with(|cell| {
        if let Ok(mut slot) = cell.try_borrow_mut() {
            *slot = None;
        }
    });
    if let Ok(mut global) = sh.data.lock() {
        *global = GlobalData::default();
    }
}

/// An in-flight span: records a Chrome `X` (complete) event over its
/// lifetime when the recorder was enabled at creation.
///
/// Created by [`span`]; the interval closes when the guard drops.
#[derive(Debug)]
#[must_use = "a span records its interval when dropped"]
pub struct Span {
    start_us: u64,
    cat: String,
    name: String,
    active: bool,
    main: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end_us = now_us();
        let dur_us = end_us.saturating_sub(self.start_us);
        // the flight mirror runs outside with_local: its own tid lookup
        // must not hit the already-borrowed TLS slot
        if flight::armed() {
            flight::record_span(&self.cat, &self.name, self.start_us, dur_us);
        }
        if !self.main {
            return;
        }
        let record = SpanRecord {
            cat: std::mem::take(&mut self.cat),
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            dur_us,
            tid: 0,
        };
        with_local(|tid, data| {
            data.spans.push(SpanRecord { tid, ..record });
        });
    }
}

/// Opens a span named `name` under category `cat`. The interval is
/// recorded by the main recorder when [`enabled`], and mirrored into
/// the [`flight`] ring when armed. With both off this allocates
/// nothing and the guard is inert.
pub fn span(cat: &str, name: &str) -> Span {
    let main = enabled();
    if !main && !flight::armed() {
        return Span {
            start_us: 0,
            cat: String::new(),
            name: String::new(),
            active: false,
            main: false,
        };
    }
    Span {
        start_us: now_us(),
        cat: cat.to_string(),
        name: name.to_string(),
        active: true,
        main,
    }
}

/// Adds `n` to the named counter. Merging is `u64` addition, so
/// drained totals are independent of thread count and schedule.
pub fn counter(name: &str, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    with_local(|_, data| match data.counters.get_mut(name) {
        Some(slot) => *slot += n,
        None => {
            data.counters.insert(name.to_string(), n);
        }
    });
}

/// Records one observation into the named histogram
/// (count/sum/min/max). Values that feed the deterministic metrics
/// report must be recorded from a deterministic context — see the
/// crate-level determinism contract.
pub fn observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_local(|_, data| match data.hists.get_mut(name) {
        Some(h) => h.record(value),
        None => {
            let mut h = Histogram::default();
            h.record(value);
            data.hists.insert(name.to_string(), h);
        }
    });
}

/// Records a warn-level event: a structured diagnostic that shows up
/// in traces and metrics reports without touching stdout/stderr. Also
/// mirrored into the [`flight`] ring when armed.
pub fn warn(cat: &str, message: &str) {
    let main = enabled();
    let armed = flight::armed();
    if !main && !armed {
        return;
    }
    let ts_us = now_us();
    if armed {
        flight::record_warn(cat, message, ts_us);
    }
    if !main {
        return;
    }
    with_local(|tid, data| {
        data.warns.push(WarnRecord {
            cat: cat.to_string(),
            message: message.to_string(),
            ts_us,
            tid,
        });
    });
}

/// Merges the calling thread's buffer into the global recorder now.
///
/// Worker threads must call this as their last act: thread-local
/// destructors are **not** guaranteed to have run by the time a
/// `thread::scope` (or `join`) returns, so without an explicit flush a
/// subsequent [`drain`] on the parent thread can miss late merges. The
/// destructor-time merge still exists, but only as a backstop.
pub fn flush() {
    let _ = LOCAL.try_with(|cell| {
        if let Ok(mut slot) = cell.try_borrow_mut() {
            *slot = None; // LocalBuf::drop merges into the global
        }
    });
}

/// Flushes the calling thread's buffer and takes everything merged so
/// far as a [`TraceReport`]. The recorder's enabled state is
/// unchanged; collected data is consumed.
///
/// Live threads other than the caller are *not* drained — workers call
/// [`flush`] before exiting, and callers drain after joining them.
pub fn drain() -> TraceReport {
    flush();
    let mut data = match shared().data.lock() {
        Ok(mut g) => std::mem::take(&mut *g),
        Err(_) => GlobalData::default(),
    };
    data.spans.sort_by(|a, b| {
        (a.start_us, a.tid, std::cmp::Reverse(a.dur_us))
            .cmp(&(b.start_us, b.tid, std::cmp::Reverse(b.dur_us)))
            .then_with(|| a.name.cmp(&b.name))
    });
    data.warns.sort_by(|a, b| {
        (a.ts_us, a.tid)
            .cmp(&(b.ts_us, b.tid))
            .then_with(|| (a.cat.as_str(), a.message.as_str()).cmp(&(b.cat.as_str(), b.message.as_str())))
    });
    TraceReport {
        spans: data.spans,
        counters: data.counters,
        histograms: data.hists,
        warnings: data.warns,
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use std::sync::{Mutex, MutexGuard};

    /// The recorder and the flight ring are process-global; every test
    /// in this crate that touches either serializes on this one lock
    /// (per-module locks would not serialize across modules).
    pub(crate) fn guard() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::guard;
    use super::*;

    #[test]
    fn disabled_recorder_collects_nothing() {
        let _g = guard();
        reset();
        {
            let _s = span("t", "t.span");
            counter("t.count", 5);
            observe("t.hist", 1.0);
            warn("t", "nope");
        }
        let report = drain();
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
        assert!(report.histograms.is_empty());
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn spans_counters_hists_and_warns_roundtrip() {
        let _g = guard();
        reset();
        enable();
        {
            let _outer = span("t", "t.outer");
            let _inner = span("t", "t.inner");
            counter("t.count", 2);
            counter("t.count", 3);
            observe("t.hist", 1.0);
            observe("t.hist", 3.0);
            warn("t", "something drifted");
        }
        let report = drain();
        disable();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.counters["t.count"], 5);
        let h = &report.histograms["t.hist"];
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(report.warnings.len(), 1);
        assert_eq!(report.warnings[0].message, "something drifted");
        // inner closed before outer: containment in timestamps
        let outer = report.spans.iter().find(|s| s.name == "t.outer").expect("outer");
        let inner = report.spans.iter().find(|s| s.name == "t.inner").expect("inner");
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
    }

    #[test]
    fn worker_thread_buffers_merge_at_exit() {
        let _g = guard();
        reset();
        enable();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    {
                        let _s = span("t", "t.worker");
                        counter("t.work", 10);
                    }
                    flush();
                });
            }
        });
        let report = drain();
        disable();
        assert_eq!(report.counters["t.work"], 40);
        assert_eq!(report.spans.iter().filter(|s| s.name == "t.worker").count(), 4);
        // distinct threads got distinct tids
        let tids: std::collections::HashSet<u64> = report.spans.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn counter_totals_are_schedule_independent() {
        let _g = guard();
        let run_with = |threads: usize| -> BTreeMap<String, u64> {
            reset();
            enable();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    scope.spawn(move || {
                        for i in 0..100u64 {
                            counter("t.ticks", 1);
                            if (t + i as usize).is_multiple_of(3) {
                                counter("t.thirds", 1);
                            }
                        }
                        flush();
                    });
                }
            });
            let report = drain();
            disable();
            report.counters
        };
        // the same logical work split 1 vs 8 ways drains identically…
        let one = run_with(1);
        assert_eq!(one["t.ticks"], 100);
        // …per-thread work scales, totals stay schedule-independent
        let eight_a = run_with(8);
        let eight_b = run_with(8);
        assert_eq!(eight_a, eight_b);
        assert_eq!(eight_a["t.ticks"], 800);
    }

    #[test]
    fn reset_discards_pending_records() {
        let _g = guard();
        reset();
        enable();
        counter("t.stale", 1);
        reset(); // discards, disables
        enable();
        counter("t.fresh", 1);
        let report = drain();
        disable();
        assert!(!report.counters.contains_key("t.stale"));
        assert_eq!(report.counters["t.fresh"], 1);
    }

    #[test]
    fn drain_consumes() {
        let _g = guard();
        reset();
        enable();
        counter("t.once", 1);
        let first = drain();
        let second = drain();
        disable();
        assert_eq!(first.counters["t.once"], 1);
        assert!(second.counters.is_empty());
    }

    #[test]
    fn span_guard_is_inert_when_disabled_mid_flight() {
        let _g = guard();
        reset();
        let s = span("t", "t.never"); // created disabled → inert
        enable();
        drop(s);
        let report = drain();
        disable();
        assert!(report.spans.is_empty());
    }
}
