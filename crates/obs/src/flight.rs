//! The flight recorder: an always-on, bounded ring buffer of recent
//! spans and events.
//!
//! The main recorder ([`crate::enable`]) is an opt-in, drain-once
//! session tool: it collects everything and hands it over exactly
//! once. That model cannot answer the operational question "what was
//! the daemon doing *just before* this anomaly?" unless tracing was
//! armed from process start. The flight recorder closes that gap: a
//! fixed-capacity ring of the most recent [`FlightEvent`]s, cheap
//! enough to leave armed for the life of a production daemon, and
//! snapshottable at any moment without consuming anything.
//!
//! Three properties drive the design:
//!
//! * **Bounded** — the ring holds at most its configured capacity;
//!   arrival `capacity + k` evicts the oldest event and bumps the
//!   eviction counter by exactly `k` ([`dropped`], exposed as
//!   `obs.dropped` in dumps and the daemon's `metrics` exposition).
//!   Eviction accounting is deterministic: `recorded == retained +
//!   dropped` always holds.
//! * **Lock-light** — the disarmed path is one relaxed atomic load
//!   (the same disabled-path contract the main recorder's `bench_sim`
//!   gate enforces); the armed path is one short mutex-guarded
//!   `VecDeque` push of a small struct. There is no per-thread
//!   buffering: flight events must be visible to *other* threads (the
//!   anomaly dumper) immediately, which is exactly what the main
//!   recorder's thread-local design cannot provide.
//! * **Stable schema** — [`FlightEvent::render_json`] emits a fixed
//!   key set in fixed order ([`EVENT_FIELDS`]); anomaly dumps are
//!   line-delimited JSON of exactly these objects, pinned by the
//!   DESIGN.md §17 doc-sync test.
//!
//! Spans and warn events recorded through the crate's normal entry
//! points ([`crate::span`], [`crate::warn`]) are mirrored into the
//! ring whenever it is armed — with or without the main recorder
//! enabled. [`note`] records flight-only instant events (e.g. a
//! daemon tagging a job id at admission) that never touch the main
//! recorder.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::trace::json_str;

/// Fixed key order of one rendered [`FlightEvent`] line. The DESIGN.md
/// §17 dump-schema table and this list are held in lockstep by a
/// doc-sync test in `quva-serve`.
pub const EVENT_FIELDS: &[&str] = &["seq", "ts_us", "tid", "kind", "cat", "name", "dur_us"];

/// Default ring capacity when [`arm`] is given 0.
pub const DEFAULT_CAPACITY: usize = 4096;

/// What one ring slot records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A closed span (`dur_us` is meaningful).
    Span,
    /// A warn-level diagnostic.
    Warn,
    /// A flight-only instant event recorded via [`note`].
    Note,
}

impl FlightKind {
    /// Stable wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Span => "span",
            FlightKind::Warn => "warn",
            FlightKind::Note => "note",
        }
    }
}

/// One recent event retained by the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Process-wide arrival index (monotonic; never reused while
    /// armed). `snapshot().events` is sorted by this.
    pub seq: u64,
    /// Event time in microseconds since the recorder epoch (span
    /// start for spans).
    pub ts_us: u64,
    /// Recorder-assigned thread id (shared with the main recorder).
    pub tid: u64,
    /// What this slot records.
    pub kind: FlightKind,
    /// Category, e.g. `"serve"`.
    pub cat: String,
    /// Span name, warn message, or note text.
    pub name: String,
    /// Span duration (0 for warns and notes).
    pub dur_us: u64,
}

impl FlightEvent {
    /// Renders the event as one JSON object line with the fixed
    /// [`EVENT_FIELDS`] key order — identical events render identical
    /// bytes.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"ts_us\":{},\"tid\":{},\"kind\":\"{}\",\"cat\":{},\"name\":{},\"dur_us\":{}}}",
            self.seq,
            self.ts_us,
            self.tid,
            self.kind.name(),
            json_str(&self.cat),
            json_str(&self.name),
            self.dur_us
        )
    }
}

/// A point-in-time copy of the ring: the retained events (oldest
/// first) plus the deterministic eviction accounting.
#[derive(Debug, Clone, Default)]
pub struct FlightSnapshot {
    /// Retained events in `seq` order (oldest first).
    pub events: Vec<FlightEvent>,
    /// Events evicted to make room since the ring was (re-)armed.
    pub dropped: u64,
    /// The ring capacity in force when the snapshot was taken.
    pub capacity: usize,
}

struct Ring {
    events: VecDeque<FlightEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl Default for Ring {
    fn default() -> Self {
        Ring {
            events: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            next_seq: 0,
            dropped: 0,
        }
    }
}

/// Whether the ring is collecting. Relaxed suffices: the flag gates
/// best-effort telemetry, never data the computation depends on.
static ARMED: AtomicBool = AtomicBool::new(false);

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(Ring::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Ring> {
    ring().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms (or re-arms) the flight recorder with the given ring capacity
/// (0 selects [`DEFAULT_CAPACITY`]). Re-arming clears retained events
/// and resets the eviction and sequence counters — the clean-slate
/// primitive daemons and tests start sessions with.
pub fn arm(capacity: usize) {
    let mut ring = lock();
    *ring = Ring {
        capacity: if capacity == 0 { DEFAULT_CAPACITY } else { capacity },
        ..Ring::default()
    };
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms the flight recorder. Retained events are kept until the
/// next [`arm`], so a post-mortem [`snapshot`] still works.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
}

/// Whether the ring is collecting: one relaxed atomic load.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Events evicted to make room since the ring was last armed.
pub fn dropped() -> u64 {
    lock().dropped
}

/// Copies the ring without consuming it: retained events in arrival
/// order plus the eviction accounting. Safe to call from any thread at
/// any time — this is what anomaly dumps are built from.
pub fn snapshot() -> FlightSnapshot {
    let ring = lock();
    FlightSnapshot {
        events: ring.events.iter().cloned().collect(),
        dropped: ring.dropped,
        capacity: ring.capacity,
    }
}

fn push(kind: FlightKind, cat: &str, name: &str, ts_us: u64, dur_us: u64) {
    let tid = crate::local_tid();
    let mut ring = lock();
    let seq = ring.next_seq;
    ring.next_seq += 1;
    if ring.events.len() >= ring.capacity {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    ring.events.push_back(FlightEvent {
        seq,
        ts_us,
        tid,
        kind,
        cat: cat.to_string(),
        name: name.to_string(),
        dur_us,
    });
}

/// Records a flight-only instant event (never enters the main
/// recorder). No-op while disarmed — one relaxed atomic load.
pub fn note(cat: &str, text: &str) {
    if !armed() {
        return;
    }
    push(FlightKind::Note, cat, text, crate::now_us(), 0);
}

/// Mirror of a closed span (called from the `Span` guard).
pub(crate) fn record_span(cat: &str, name: &str, start_us: u64, dur_us: u64) {
    push(FlightKind::Span, cat, name, start_us, dur_us);
}

/// Mirror of a warn event (called from [`crate::warn`]).
pub(crate) fn record_warn(cat: &str, message: &str, ts_us: u64) {
    push(FlightKind::Warn, cat, message, ts_us, 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is process-global; these tests serialize with every
    // other recorder test through the crate-wide test guard.
    use crate::tests_support::guard;

    #[test]
    fn disarmed_ring_records_nothing() {
        let _g = guard();
        arm(8);
        disarm();
        note("t", "nothing");
        {
            let _s = crate::span("t", "t.ghost");
        }
        let snap = snapshot();
        assert!(snap.events.is_empty(), "{snap:?}");
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn eviction_accounting_is_deterministic() {
        let _g = guard();
        arm(4);
        for i in 0..10 {
            note("t", &format!("e{i}"));
        }
        let snap = snapshot();
        disarm();
        assert_eq!(snap.capacity, 4);
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6, "recorded == retained + dropped");
        // the survivors are exactly the newest four, in seq order
        let names: Vec<&str> = snap.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["e6", "e7", "e8", "e9"]);
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9]);
    }

    #[test]
    fn spans_and_warns_mirror_into_the_ring_without_the_main_recorder() {
        let _g = guard();
        crate::reset(); // main recorder OFF
        arm(16);
        {
            let _s = crate::span("serve", "request");
            crate::warn("serve", "queue is deep");
        }
        let snap = snapshot();
        disarm();
        assert!(
            snap.events
                .iter()
                .any(|e| e.kind == FlightKind::Span && e.name == "request"),
            "{snap:?}"
        );
        assert!(
            snap.events
                .iter()
                .any(|e| e.kind == FlightKind::Warn && e.name == "queue is deep"),
            "{snap:?}"
        );
        // nothing leaked into the (disabled) main recorder
        let report = crate::drain();
        assert!(report.is_empty(), "flight armed must not feed the main recorder");
    }

    #[test]
    fn rendered_events_parse_and_pin_the_field_order() {
        let _g = guard();
        arm(8);
        note("serve", "job \"x\" admitted");
        let snap = snapshot();
        disarm();
        let line = snap.events[0].render_json();
        let doc = crate::parse_json(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(doc.get("kind").and_then(|v| v.as_str()), Some("note"));
        assert_eq!(doc.get("cat").and_then(|v| v.as_str()), Some("serve"));
        // every schema field present, in the pinned order
        let mut at = 0;
        for field in EVENT_FIELDS {
            let pos = line[at..]
                .find(&format!("\"{field}\":"))
                .unwrap_or_else(|| panic!("{field} missing or out of order in {line}"));
            at += pos;
        }
    }

    #[test]
    fn rearm_clears_and_resets() {
        let _g = guard();
        arm(4);
        for i in 0..9 {
            note("t", &format!("old{i}"));
        }
        assert!(dropped() > 0);
        arm(4);
        let snap = snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped, 0);
        note("t", "fresh");
        assert_eq!(snapshot().events[0].seq, 0, "seq restarts on re-arm");
        disarm();
    }

    #[test]
    fn snapshot_does_not_consume() {
        let _g = guard();
        arm(8);
        note("t", "stay");
        let first = snapshot();
        let second = snapshot();
        disarm();
        assert_eq!(first.events, second.events);
    }
}
