//! Console table and CSV rendering for the experiment reports.

use std::fmt;

/// A simple column-aligned table that also serializes to CSV — every
/// report binary prints one of these and writes the CSV into
/// `results/`.
///
/// # Examples
///
/// ```
/// use quva_stats::Table;
///
/// let mut t = Table::new(["benchmark", "PST"]);
/// t.row(["bv-16", "0.42"]);
/// assert!(t.to_string().contains("bv-16"));
/// assert_eq!(t.to_csv(), "benchmark,PST\nbv-16,0.42\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "a table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes as CSV (no quoting — reports contain no commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    f.write_str("  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        print_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 3 decimal places (the report convention).
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a ratio as "1.43x".
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_pads_columns() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["wide-cell", "x"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("a        "), "{:?}", lines[0]);
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2"]).row(["3", "4"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_row_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_rejected() {
        Table::new(Vec::<String>::new());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt_ratio(1.429), "1.43x");
    }
}
