//! Summary statistics used throughout the experiment reports.

/// Arithmetic mean; 0 for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(quva_stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(quva_stats::mean(&[]), 0.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation; 0 for fewer than two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Geometric mean (the paper's Table 3 aggregate).
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Minimum; `None` for an empty slice.
pub fn min(values: &[f64]) -> Option<f64> {
    values.iter().copied().reduce(f64::min)
}

/// Maximum; `None` for an empty slice.
pub fn max(values: &[f64]) -> Option<f64> {
    values.iter().copied().reduce(f64::max)
}

/// The `p`-th percentile (0–100) by linear interpolation; `None` for an
/// empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Median (50th percentile).
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Pearson correlation coefficient of two equal-length series; `None`
/// for mismatched lengths, fewer than two points, or zero variance.
///
/// # Examples
///
/// ```
/// let r = quva_stats::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

/// Least-squares line fit `y ≈ slope·x + intercept`; `None` under the
/// same conditions as [`pearson`].
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
    }
    if vx == 0.0 {
        return None;
    }
    let slope = cov / vx;
    Some((slope, my - slope * mx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn std_of_singleton_is_zero() {
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(median(&v), Some(2.5));
    }

    #[test]
    fn min_max() {
        let v = [3.0, -1.0, 7.0];
        assert_eq!(min(&v), Some(-1.0));
        assert_eq!(max(&v), Some(7.0));
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn pearson_signs_and_bounds() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&x, &[2.0, 4.0, 6.0, 8.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &[8.0, 6.0, 4.0, 2.0]).unwrap() + 1.0).abs() < 1e-12);
        let weak = pearson(&x, &[1.0, 3.0, 2.0, 4.0]).unwrap();
        assert!(weak > 0.0 && weak < 1.0);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None); // zero variance
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let (slope, intercept) = linear_fit(&xs, &ys).unwrap();
        assert!((slope - 2.5).abs() < 1e-12);
        assert!((intercept + 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), None);
    }
}
