//! # quva-stats — statistics and report rendering for quva experiments
//!
//! Small, dependency-free helpers shared by the experiment harness:
//! summary statistics ([`mean`], [`std_dev`], [`geomean`],
//! [`percentile`]), fixed-bin [`Histogram`]s (Figs. 5–7), and the
//! console/CSV [`Table`] every report binary emits.
//!
//! # Examples
//!
//! ```
//! use quva_stats::{geomean, Histogram};
//!
//! assert!((geomean(&[1.22, 1.09, 1.90, 1.35]) - 1.36).abs() < 0.02);
//!
//! let mut h = Histogram::new(0.0, 0.2, 20);
//! h.extend([0.02, 0.04, 0.043, 0.15]);
//! assert_eq!(h.total(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod histogram;
mod summary;
mod table;

pub use histogram::Histogram;
pub use summary::{geomean, linear_fit, max, mean, median, min, pearson, percentile, std_dev};
pub use table::{fmt3, fmt_ratio, Table};
