//! Fixed-bin histograms with ASCII rendering — used to regenerate the
//! distribution figures (Figs. 5–7).

use std::fmt;
use std::fmt::Write as _;

/// A histogram over `[lo, hi)` with equally-sized bins.
///
/// # Examples
///
/// ```
/// use quva_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.extend([1.0, 1.5, 7.2, 9.9, 12.0]); // 12.0 lands in the overflow bin
/// assert_eq!(h.count(0), 2);
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates an empty histogram over `[lo, hi)` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range [{lo}, {hi}) is empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn add(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let bin = (((value - self.lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[bin] += 1;
        }
    }

    /// The number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// The count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bins()`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(bin_center, frequency)` pairs with frequencies normalized so
    /// they sum to 1 over in-range observations.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let in_range: u64 = self.counts.iter().sum();
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + (i as f64 + 0.5) * width;
                let f = if in_range == 0 {
                    0.0
                } else {
                    c as f64 / in_range as f64
                };
                (center, f)
            })
            .collect()
    }

    /// Renders the histogram as ASCII bars (for the report binaries).
    pub fn render(&self, max_width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * max_width) / peak as usize);
            let _ = writeln!(
                out,
                "{:>9.3} – {:<9.3} |{:<w$} {}",
                self.lo + i as f64 * width,
                self.lo + (i as f64 + 1.0) * width,
                bar,
                c,
                w = max_width
            );
        }
        out
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.add(v);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_uniform() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.extend([0.5, 1.5, 2.5, 3.5]);
        for i in 0..4 {
            assert_eq!(h.count(i), 1);
        }
    }

    #[test]
    fn boundary_values() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(0.0); // first bin
        h.add(0.5); // second bin
        h.add(1.0); // overflow ([lo, hi) excludes hi)
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 1);
        h.extend([-0.1, 2.0, 0.5]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn normalized_sums_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend((0..100).map(|i| i as f64 / 10.0));
        let sum: f64 = h.normalized().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.extend([0.5, 0.6, 1.5]);
        let text = h.render(10);
        assert!(text.contains('#'));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn inverted_range_rejected() {
        Histogram::new(2.0, 1.0, 3);
    }
}
