//! Synthetic calibration generation.
//!
//! The paper's raw input was 52 days of scraped IBM-Q20 characterization
//! reports, which are not redistributable. This module substitutes a
//! seeded generator that reproduces every *statistic* the paper reports
//! (§3, Figs. 5–9):
//!
//! * T1 ~ 80.32 µs mean / 35.23 µs σ; T2 ~ 42.13 µs mean / 13.34 µs σ;
//! * single-qubit error mostly below 1 %;
//! * two-qubit error 4.3 % mean / 3.02 % σ, best link 2 %, worst 15 %
//!   (the 7.5x spatial spread of Fig. 9);
//! * temporal behaviour per Fig. 8: links have a persistent per-link
//!   mean — "the strong link tends to remain strong" — with AR(1)
//!   day-to-day drift around it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::calibration::{Calibration, GateDurations};
use crate::topology::Topology;

/// Distribution parameters for a device family's variation profile.
///
/// All times in microseconds, all error rates as probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationProfile {
    /// Mean of T1, µs.
    pub t1_mean: f64,
    /// Standard deviation of T1, µs.
    pub t1_std: f64,
    /// Mean of T2, µs.
    pub t2_mean: f64,
    /// Standard deviation of T2, µs.
    pub t2_std: f64,
    /// Mean single-qubit error rate.
    pub e1q_mean: f64,
    /// Standard deviation of the single-qubit error rate.
    pub e1q_std: f64,
    /// Mean readout error rate.
    pub ero_mean: f64,
    /// Standard deviation of the readout error rate.
    pub ero_std: f64,
    /// Mean two-qubit error rate.
    pub e2q_mean: f64,
    /// Standard deviation of the two-qubit error rate.
    pub e2q_std: f64,
    /// Lower truncation bound on the two-qubit error rate.
    pub e2q_min: f64,
    /// Upper truncation bound on the two-qubit error rate.
    pub e2q_max: f64,
    /// AR(1) persistence of a link's error across calibration cycles
    /// (1.0 = frozen, 0.0 = memoryless). Fig. 8 shows strong persistence.
    pub temporal_rho: f64,
    /// Standard deviation of the day-to-day innovation, as a fraction of
    /// the link's persistent mean.
    pub temporal_jitter: f64,
}

impl VariationProfile {
    /// The IBM-Q20 profile from the paper's §3 measurements.
    pub fn ibm_q20_paper() -> Self {
        VariationProfile {
            t1_mean: 80.32,
            t1_std: 35.23,
            t2_mean: 42.13,
            t2_std: 13.34,
            e1q_mean: 0.0035,
            e1q_std: 0.004,
            ero_mean: 0.035,
            ero_std: 0.015,
            e2q_mean: 0.043,
            e2q_std: 0.0302,
            e2q_min: 0.02,
            e2q_max: 0.15,
            temporal_rho: 0.8,
            temporal_jitter: 0.15,
        }
    }

    /// The IBM-Q5 (Tenerife) profile from §7: 4.2 % average two-qubit
    /// error, 12 % worst link.
    pub fn ibm_q5_paper() -> Self {
        VariationProfile {
            e2q_mean: 0.042,
            e2q_std: 0.025,
            e2q_min: 0.015,
            e2q_max: 0.12,
            ..VariationProfile::ibm_q20_paper()
        }
    }
}

/// Seeded generator of calibration snapshots and day-by-day series.
///
/// # Examples
///
/// ```
/// use quva_device::{CalibrationGenerator, Topology, VariationProfile};
///
/// let topo = Topology::ibm_q20_tokyo();
/// let mut g = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 42);
/// let cal = g.snapshot(&topo);
/// assert!(cal.variation_ratio() > 2.0); // significant spatial variation
/// ```
#[derive(Debug)]
pub struct CalibrationGenerator {
    profile: VariationProfile,
    rng: StdRng,
}

impl CalibrationGenerator {
    /// Creates a generator with the given profile and RNG seed.
    pub fn new(profile: VariationProfile, seed: u64) -> Self {
        CalibrationGenerator {
            profile,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The profile this generator samples from.
    pub fn profile(&self) -> &VariationProfile {
        &self.profile
    }

    /// One independent characterization snapshot of `topology`.
    pub fn snapshot(&mut self, topology: &Topology) -> Calibration {
        let means = self.link_means(topology);
        self.snapshot_around(topology, &means)
    }

    /// A `days`-long series of daily calibrations with persistent
    /// per-link strength (Fig. 8 behaviour): day d's error on a link is
    /// an AR(1) process around that link's persistent mean.
    pub fn daily_series(&mut self, topology: &Topology, days: usize) -> Vec<Calibration> {
        let p = self.profile;
        let means = self.link_means(topology);
        let mut prev: Vec<f64> = means.clone();
        let mut out = Vec::with_capacity(days);
        for _ in 0..days {
            let today: Vec<f64> = means
                .iter()
                .zip(prev.iter())
                .map(|(&mu, &prev_e)| {
                    let innovation = self.normal(0.0, p.temporal_jitter * mu);
                    let e = mu + p.temporal_rho * (prev_e - mu) + innovation;
                    e.clamp(p.e2q_min * 0.5, p.e2q_max * 1.3).clamp(1e-4, 0.5)
                })
                .collect();
            prev = today.clone();
            out.push(self.snapshot_with_links(topology, today));
        }
        out
    }

    /// Persistent per-link mean error rates (the "identity" of each
    /// link). Sampled from a lognormal matched to the profile's mean and
    /// standard deviation — Fig. 7 shows a right-skewed distribution
    /// (most links good, a weak tail), which a lognormal reproduces
    /// without the truncation bias a clipped normal would add.
    fn link_means(&mut self, topology: &Topology) -> Vec<f64> {
        let p = self.profile;
        // lognormal with E = e2q_mean, SD = e2q_std:
        //   sigma² = ln(1 + (SD/E)²),  mu = ln(E) − sigma²/2
        let sigma2 = (1.0 + (p.e2q_std / p.e2q_mean).powi(2)).ln();
        let mu = p.e2q_mean.ln() - sigma2 / 2.0;
        let sigma = sigma2.sqrt();
        (0..topology.num_links())
            .map(|_| {
                let z = self.normal(mu, sigma);
                z.exp().clamp(p.e2q_min, p.e2q_max)
            })
            .collect()
    }

    fn snapshot_around(&mut self, topology: &Topology, means: &[f64]) -> Calibration {
        let p = self.profile;
        let links = means
            .iter()
            .map(|&mu| {
                let e = self.normal(mu, p.temporal_jitter * mu);
                e.clamp(p.e2q_min * 0.5, p.e2q_max * 1.3).clamp(1e-4, 0.5)
            })
            .collect();
        self.snapshot_with_links(topology, links)
    }

    /// **Invariant:** every snapshot is a valid [`Calibration`] — all
    /// error rates land in `[0, 1)` and coherence times are positive,
    /// even for pathological profiles (NaN or out-of-range parameters
    /// degrade to the truncation bounds, they never panic).
    fn snapshot_with_links(&mut self, topology: &Topology, err_2q: Vec<f64>) -> Calibration {
        let p = self.profile;
        let n = topology.num_qubits();
        let t1: Vec<f64> = (0..n)
            .map(|_| self.trunc_normal(p.t1_mean, p.t1_std, 5.0, 250.0))
            .collect();
        let t2: Vec<f64> = (0..n)
            .map(|i| {
                let raw = self.trunc_normal(p.t2_mean, p.t2_std, 3.0, 150.0);
                // physics: T2 <= 2*T1
                raw.min(2.0 * t1[i])
            })
            .collect();
        let e1q = (0..n)
            .map(|_| {
                crate::calibration::clamp_error_rate(self.trunc_normal(p.e1q_mean, p.e1q_std, 1e-4, 0.04))
            })
            .collect();
        let ero = (0..n)
            .map(|_| {
                crate::calibration::clamp_error_rate(self.trunc_normal(p.ero_mean, p.ero_std, 5e-3, 0.2))
            })
            .collect();
        let err_2q = err_2q
            .into_iter()
            .map(crate::calibration::clamp_error_rate)
            .collect();
        match Calibration::new(topology, t1, t2, e1q, ero, err_2q, GateDurations::default()) {
            Ok(cal) => cal,
            Err(_) => unreachable!("clamped generator output is always valid"),
        }
    }

    /// A standard-normal draw via Box–Muller (kept local to avoid an
    /// extra dependency on `rand_distr`).
    fn normal(&mut self, mean: f64, std: f64) -> f64 {
        let u1: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std * z
    }

    /// Normal draw truncated by rejection into `[lo, hi]`.
    fn trunc_normal(&mut self, mean: f64, std: f64, lo: f64, hi: f64) -> f64 {
        for _ in 0..1000 {
            let x = self.normal(mean, std);
            if (lo..=hi).contains(&x) {
                return x;
            }
        }
        // Pathological parameters: fall back to the clamped mean, or the
        // lower bound when even the mean is garbage (NaN survives clamp).
        let fallback = mean.clamp(lo, hi);
        if fallback.is_finite() {
            fallback
        } else {
            lo
        }
    }
}

/// The deterministic IBM-Q20 *average* error map used as the paper's
/// primary evaluation configuration (Fig. 9): per-link mean failure
/// rates over the 52-day window, with the published extremes — best
/// links at 2 %, the worst link (Q14–Q18) at 15 %.
///
/// Link values in between are a fixed seeded draw from the paper's
/// distribution, so every run sees the identical map.
///
/// # Examples
///
/// ```
/// use quva_device::{ibm_q20_average_calibration, Topology};
///
/// let topo = Topology::ibm_q20_tokyo();
/// let cal = ibm_q20_average_calibration(&topo);
/// let (best, worst) = cal.two_qubit_error_range();
/// assert_eq!(best, 0.02);
/// assert_eq!(worst, 0.15);
/// assert!((cal.variation_ratio() - 7.5).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if `topology` is not the 20-qubit Tokyo layout.
pub fn ibm_q20_average_calibration(topology: &Topology) -> Calibration {
    assert_eq!(topology.num_qubits(), 20, "expected the IBM-Q20 Tokyo layout");
    let mut gen = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 0x2019_0413);
    let mut cal = gen.snapshot(topology);
    // Monotonically rescale the sampled link errors onto the published
    // [0.02, 0.15] band, so exactly one link sits at each extreme —
    // clamping instead would pile many links onto the 2 % floor and
    // hand the variation-aware policies an unrealistically large pool
    // of best-case links.
    rescale_link_errors(&mut cal, topology.num_links(), 0.02, 0.15, 0.043);
    // Relocate the worst link onto the Q14–Q18 diagonal named in Fig. 9.
    let worst_target = topology
        .link_id(quva_circuit::PhysQubit(14), quva_circuit::PhysQubit(18))
        .unwrap_or_else(|| panic!("expected the IBM-Q20 Tokyo layout: missing the 14-18 diagonal"));
    let worst_current = (0..topology.num_links())
        .max_by(|&a, &b| cal.two_qubit_error(a).total_cmp(&cal.two_qubit_error(b)))
        .unwrap_or_else(|| unreachable!("Tokyo has links"));
    let held = cal.two_qubit_error(worst_target);
    cal.set_two_qubit_error(worst_target, cal.two_qubit_error(worst_current));
    cal.set_two_qubit_error(worst_current, held);
    cal
}

/// Monotone rescale of a calibration's 2Q errors onto `[lo, hi]`,
/// preserving the link ordering and hitting `target_mean` (the paper
/// reports both the extremes *and* the mean): values are mapped through
/// `lo + (hi − lo) · t^γ` with `t` the normalized rank position, and γ
/// solved by bisection so the mean lands on target.
fn rescale_link_errors(cal: &mut Calibration, num_links: usize, lo: f64, hi: f64, target_mean: f64) {
    let values: Vec<f64> = (0..num_links).map(|id| cal.two_qubit_error(id)).collect();
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(0.0f64, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    let normalized: Vec<f64> = values.iter().map(|&e| (e - min) / span).collect();

    let mean_for = |gamma: f64| -> f64 {
        normalized
            .iter()
            .map(|&t| lo + (hi - lo) * t.powf(gamma))
            .sum::<f64>()
            / num_links as f64
    };
    // mean_for is decreasing in γ; bisect on γ ∈ [0.1, 10]
    let (mut g_lo, mut g_hi) = (0.1f64, 10.0f64);
    let target = target_mean.clamp(mean_for(g_hi), mean_for(g_lo));
    for _ in 0..60 {
        let mid = 0.5 * (g_lo + g_hi);
        if mean_for(mid) > target {
            g_lo = mid;
        } else {
            g_hi = mid;
        }
    }
    let gamma = 0.5 * (g_lo + g_hi);
    for (id, &t) in normalized.iter().enumerate() {
        cal.set_two_qubit_error(id, lo + (hi - lo) * t.powf(gamma));
    }
}

/// The deterministic IBM-Q5 (Tenerife) error map for §7: 4.2 % average
/// two-qubit error with the worst link at 12 %.
///
/// # Panics
///
/// Panics if `topology` is not a 5-qubit Tenerife layout.
pub fn ibm_q5_average_calibration(topology: &Topology) -> Calibration {
    assert_eq!(topology.num_qubits(), 5, "expected the IBM-Q5 Tenerife layout");
    let mut gen = CalibrationGenerator::new(VariationProfile::ibm_q5_paper(), 0x2019_0417);
    let mut cal = gen.snapshot(topology);
    // Rescale onto the §7 band: best link ~1.7 %, worst 12 %, mean near
    // the published 4.2 %.
    rescale_link_errors(&mut cal, topology.num_links(), 0.017, 0.12, 0.042);
    cal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokyo() -> Topology {
        Topology::ibm_q20_tokyo()
    }

    #[test]
    fn snapshot_is_deterministic_per_seed() {
        let topo = tokyo();
        let a = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 7).snapshot(&topo);
        let b = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 7).snapshot(&topo);
        assert_eq!(a, b);
        let c = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 8).snapshot(&topo);
        assert_ne!(a, c);
    }

    #[test]
    fn snapshot_statistics_match_profile() {
        let topo = tokyo();
        let profile = VariationProfile::ibm_q20_paper();
        // aggregate over many snapshots: 38 links x 100 days, like Fig. 7
        let mut g = CalibrationGenerator::new(profile, 1);
        let mut all = Vec::new();
        for _ in 0..100 {
            all.extend_from_slice(g.snapshot(&topo).two_qubit_errors());
        }
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        assert!(
            (mean - profile.e2q_mean).abs() < 0.01,
            "mean 2q error {mean} too far from profile"
        );
        let t1s: Vec<f64> = (0..50)
            .flat_map(|_| g.snapshot(&topo).t1_table().to_vec())
            .collect();
        let t1m = t1s.iter().sum::<f64>() / t1s.len() as f64;
        assert!((t1m - profile.t1_mean).abs() < 8.0, "T1 mean {t1m} too far");
    }

    #[test]
    fn t2_never_exceeds_twice_t1() {
        let topo = tokyo();
        let mut g = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 3);
        for _ in 0..20 {
            let cal = g.snapshot(&topo);
            for q in 0..20 {
                assert!(cal.t2_us(q) <= 2.0 * cal.t1_us(q) + 1e-9);
            }
        }
    }

    #[test]
    fn daily_series_is_persistent() {
        // Fig. 8: a link strong on average stays mostly strong.
        let topo = tokyo();
        let mut g = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 11);
        let days = g.daily_series(&topo, 52);
        assert_eq!(days.len(), 52);
        // find strongest and weakest link by day-0 error
        let first = &days[0];
        let mut ids: Vec<usize> = (0..topo.num_links()).collect();
        ids.sort_by(|&a, &b| first.two_qubit_error(a).total_cmp(&first.two_qubit_error(b)));
        let (strong, weak) = (ids[0], *ids.last().unwrap());
        // the initially-strong link beats the initially-weak link on most days
        let wins = days
            .iter()
            .filter(|d| d.two_qubit_error(strong) < d.two_qubit_error(weak))
            .count();
        assert!(
            wins > 40,
            "persistence too weak: strong link won only {wins}/52 days"
        );
    }

    #[test]
    fn daily_series_varies_day_to_day() {
        let topo = tokyo();
        let mut g = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 11);
        let days = g.daily_series(&topo, 5);
        assert_ne!(days[0].two_qubit_errors(), days[1].two_qubit_errors());
    }

    #[test]
    fn q20_average_map_has_published_extremes() {
        let topo = tokyo();
        let cal = ibm_q20_average_calibration(&topo);
        let (best, worst) = cal.two_qubit_error_range();
        assert_eq!(best, 0.02);
        assert_eq!(worst, 0.15);
        // mean in the plausible band around the published 4.3 %
        let mean = cal.mean_two_qubit_error();
        assert!((0.03..0.07).contains(&mean), "mean {mean} out of band");
    }

    #[test]
    fn q20_average_map_is_deterministic() {
        let topo = tokyo();
        assert_eq!(
            ibm_q20_average_calibration(&topo),
            ibm_q20_average_calibration(&topo)
        );
    }

    #[test]
    fn q5_average_map_matches_section_7() {
        let topo = Topology::ibm_q5_tenerife();
        let cal = ibm_q5_average_calibration(&topo);
        let (_, worst) = cal.two_qubit_error_range();
        assert_eq!(worst, 0.12);
        let mean = cal.mean_two_qubit_error();
        assert!((0.025..0.07).contains(&mean), "mean {mean} out of band");
    }

    #[test]
    #[should_panic(expected = "Tokyo")]
    fn q20_map_rejects_wrong_topology() {
        ibm_q20_average_calibration(&Topology::linear(5));
    }

    #[test]
    fn profiles_expose_paper_numbers() {
        let p = VariationProfile::ibm_q20_paper();
        assert_eq!(p.t1_mean, 80.32);
        assert_eq!(p.e2q_mean, 0.043);
        let q5 = VariationProfile::ibm_q5_paper();
        assert_eq!(q5.e2q_mean, 0.042);
    }
}
