//! Coupling topology of a NISQ device.
//!
//! A topology is an undirected graph whose nodes are physical qubits and
//! whose edges are coupling links: a two-qubit gate can only be applied
//! across an edge (paper §2.4).

use std::collections::HashMap;
use std::fmt;

use petgraph::graph::{NodeIndex, UnGraph};
use quva_circuit::PhysQubit;

/// An undirected coupling link between two physical qubits, stored with
/// the smaller index first so that `(a, b)` and `(b, a)` compare equal.
///
/// # Examples
///
/// ```
/// use quva_device::Link;
/// use quva_circuit::PhysQubit;
///
/// assert_eq!(Link::new(PhysQubit(3), PhysQubit(1)), Link::new(PhysQubit(1), PhysQubit(3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Link {
    a: PhysQubit,
    b: PhysQubit,
}

impl Link {
    /// Creates a normalized link.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loops are not physical couplings).
    pub fn new(a: PhysQubit, b: PhysQubit) -> Self {
        assert!(a != b, "coupling link endpoints must differ");
        if a < b {
            Link { a, b }
        } else {
            Link { a: b, b: a }
        }
    }

    /// The endpoint with the smaller index.
    pub fn low(self) -> PhysQubit {
        self.a
    }

    /// The endpoint with the larger index.
    pub fn high(self) -> PhysQubit {
        self.b
    }

    /// Both endpoints, low first.
    pub fn endpoints(self) -> (PhysQubit, PhysQubit) {
        (self.a, self.b)
    }

    /// Whether `q` is one of the endpoints.
    pub fn touches(self, q: PhysQubit) -> bool {
        self.a == q || self.b == q
    }

    /// Given one endpoint, returns the other; `None` if `q` is not an
    /// endpoint.
    pub fn other(self, q: PhysQubit) -> Option<PhysQubit> {
        if q == self.a {
            Some(self.b)
        } else if q == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}–{}", self.a, self.b)
    }
}

/// The coupling graph of a device.
///
/// # Examples
///
/// ```
/// use quva_device::Topology;
/// use quva_circuit::PhysQubit;
///
/// let t = Topology::linear(3);
/// assert_eq!(t.num_qubits(), 3);
/// assert!(t.has_link(PhysQubit(0), PhysQubit(1)));
/// assert!(!t.has_link(PhysQubit(0), PhysQubit(2)));
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    graph: UnGraph<PhysQubit, ()>,
    links: Vec<Link>,
    link_index: HashMap<Link, usize>,
}

impl Topology {
    /// Builds a topology from an explicit link list.
    ///
    /// Duplicate links are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if a link references a qubit `>= num_qubits`, or if a link
    /// is a self-loop.
    pub fn from_links(
        name: impl Into<String>,
        num_qubits: usize,
        link_pairs: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        let mut graph = UnGraph::new_undirected();
        let nodes: Vec<NodeIndex> = (0..num_qubits)
            .map(|i| graph.add_node(PhysQubit(i as u32)))
            .collect();
        let mut links = Vec::new();
        let mut link_index = HashMap::new();
        for (a, b) in link_pairs {
            assert!(
                (a as usize) < num_qubits && (b as usize) < num_qubits,
                "link ({a},{b}) out of range"
            );
            let link = Link::new(PhysQubit(a), PhysQubit(b));
            if link_index.contains_key(&link) {
                continue;
            }
            link_index.insert(link, links.len());
            links.push(link);
            graph.add_edge(nodes[a as usize], nodes[b as usize], ());
        }
        Topology {
            name: name.into(),
            graph,
            links,
            link_index,
        }
    }

    /// A human-readable name ("ibm-q20-tokyo", "linear-5", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of undirected coupling links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// All links, in insertion order. The position of a link in this
    /// slice is its *link id*, used by calibration data.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The id of a link (its index into [`Topology::links`]), if present.
    pub fn link_id(&self, a: PhysQubit, b: PhysQubit) -> Option<usize> {
        if a == b {
            return None;
        }
        self.link_index.get(&Link::new(a, b)).copied()
    }

    /// Whether qubits `a` and `b` are directly coupled.
    pub fn has_link(&self, a: PhysQubit, b: PhysQubit) -> bool {
        self.link_id(a, b).is_some()
    }

    /// The neighbors of `q`, in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn neighbors(&self, q: PhysQubit) -> Vec<PhysQubit> {
        assert!(q.index() < self.num_qubits(), "{q} out of range");
        let mut out: Vec<PhysQubit> = self
            .graph
            .neighbors(NodeIndex::new(q.index()))
            .map(|n| self.graph[n])
            .collect();
        out.sort_unstable();
        out
    }

    /// The coupling degree of `q`.
    pub fn degree(&self, q: PhysQubit) -> usize {
        self.graph.neighbors(NodeIndex::new(q.index())).count()
    }

    /// Whether every qubit can reach every other via coupling links.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits() == 0 {
            return true;
        }
        let mut seen = vec![false; self.num_qubits()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for n in self.graph.neighbors(NodeIndex::new(v)) {
                let i = n.index();
                if !seen[i] {
                    seen[i] = true;
                    count += 1;
                    stack.push(i);
                }
            }
        }
        count == self.num_qubits()
    }

    /// Iterates over all physical qubits.
    pub fn qubits(&self) -> impl Iterator<Item = PhysQubit> + '_ {
        (0..self.num_qubits()).map(|i| PhysQubit(i as u32))
    }

    /// Access to the underlying petgraph graph (read-only), for callers
    /// that need custom traversals.
    pub fn graph(&self) -> &UnGraph<PhysQubit, ()> {
        &self.graph
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} links)",
            self.name,
            self.num_qubits(),
            self.num_links()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_normalizes_order() {
        let l = Link::new(PhysQubit(5), PhysQubit(2));
        assert_eq!(l.low(), PhysQubit(2));
        assert_eq!(l.high(), PhysQubit(5));
        assert_eq!(l.endpoints(), (PhysQubit(2), PhysQubit(5)));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn link_rejects_self_loop() {
        Link::new(PhysQubit(1), PhysQubit(1));
    }

    #[test]
    fn link_other_endpoint() {
        let l = Link::new(PhysQubit(0), PhysQubit(1));
        assert_eq!(l.other(PhysQubit(0)), Some(PhysQubit(1)));
        assert_eq!(l.other(PhysQubit(1)), Some(PhysQubit(0)));
        assert_eq!(l.other(PhysQubit(2)), None);
        assert!(l.touches(PhysQubit(0)));
        assert!(!l.touches(PhysQubit(2)));
    }

    #[test]
    fn from_links_collapses_duplicates() {
        let t = Topology::from_links("t", 3, [(0, 1), (1, 0), (1, 2)]);
        assert_eq!(t.num_links(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_links_rejects_bad_qubit() {
        Topology::from_links("t", 2, [(0, 2)]);
    }

    #[test]
    fn link_ids_are_stable() {
        let t = Topology::from_links("t", 4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(t.link_id(PhysQubit(1), PhysQubit(2)), Some(1));
        assert_eq!(t.link_id(PhysQubit(2), PhysQubit(1)), Some(1));
        assert_eq!(t.link_id(PhysQubit(0), PhysQubit(3)), None);
        assert_eq!(t.link_id(PhysQubit(0), PhysQubit(0)), None);
    }

    #[test]
    fn neighbors_sorted() {
        let t = Topology::from_links("t", 4, [(2, 1), (2, 3), (2, 0)]);
        assert_eq!(
            t.neighbors(PhysQubit(2)),
            vec![PhysQubit(0), PhysQubit(1), PhysQubit(3)]
        );
        assert_eq!(t.degree(PhysQubit(2)), 3);
        assert_eq!(t.degree(PhysQubit(0)), 1);
    }

    #[test]
    fn connectivity_detection() {
        let connected = Topology::from_links("c", 3, [(0, 1), (1, 2)]);
        assert!(connected.is_connected());
        let disconnected = Topology::from_links("d", 4, [(0, 1), (2, 3)]);
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn display_includes_counts() {
        let t = Topology::from_links("demo", 3, [(0, 1)]);
        assert_eq!(t.to_string(), "demo (3 qubits, 1 links)");
    }
}
