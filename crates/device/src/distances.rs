//! All-pairs distance matrices over the coupling graph.
//!
//! Two metrics matter to the policies:
//!
//! * **hop distance** — minimum number of links between two qubits
//!   (baseline SWAP-count metric, §4.5 step 2);
//! * **reliability distance** — minimum accumulated failure weight
//!   `−ln(p_success)` between two qubits (VQM metric, Algorithm 1
//!   step 1), computed with Dijkstra's algorithm.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use quva_circuit::PhysQubit;

use crate::device::Device;
use crate::topology::Topology;

/// Dense all-pairs matrix of minimum hop counts.
///
/// # Examples
///
/// ```
/// use quva_device::{HopMatrix, Topology};
/// use quva_circuit::PhysQubit;
///
/// let t = Topology::linear(4);
/// let hops = HopMatrix::of(&t);
/// assert_eq!(hops.get(PhysQubit(0), PhysQubit(3)), 3);
/// assert_eq!(hops.get(PhysQubit(2), PhysQubit(2)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopMatrix {
    n: usize,
    dist: Vec<u32>,
}

/// Marker for an unreachable pair in a [`HopMatrix`].
pub const UNREACHABLE_HOPS: u32 = u32::MAX;

impl HopMatrix {
    /// Builds the matrix with one BFS per qubit.
    pub fn of(topology: &Topology) -> Self {
        Self::of_filtered(topology, |_| true)
    }

    /// Builds the matrix over the *active* coupling graph of a device:
    /// disabled links are treated as absent, so pairs separated by dead
    /// links report [`UNREACHABLE_HOPS`].
    pub fn of_active(device: &Device) -> Self {
        Self::of_filtered(device.topology(), |id| device.link_enabled(id))
    }

    fn of_filtered(topology: &Topology, enabled: impl Fn(usize) -> bool) -> Self {
        let n = topology.num_qubits();
        let mut dist = vec![UNREACHABLE_HOPS; n * n];
        let mut queue = VecDeque::new();
        for s in 0..n {
            dist[s * n + s] = 0;
            queue.clear();
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                let dv = dist[s * n + v];
                for u in topology.neighbors(PhysQubit(v as u32)) {
                    let id = topology
                        .link_id(PhysQubit(v as u32), u)
                        .unwrap_or_else(|| unreachable!("neighbor implies link"));
                    if !enabled(id) {
                        continue;
                    }
                    let ui = u.index();
                    if dist[s * n + ui] == UNREACHABLE_HOPS {
                        dist[s * n + ui] = dv + 1;
                        queue.push_back(ui);
                    }
                }
            }
        }
        HopMatrix { n, dist }
    }

    /// Hop distance between two qubits, [`UNREACHABLE_HOPS`] if
    /// disconnected.
    pub fn get(&self, a: PhysQubit, b: PhysQubit) -> u32 {
        self.dist[a.index() * self.n + b.index()]
    }

    /// The minimum number of SWAPs needed to make `a` and `b` adjacent
    /// (hop distance − 1; zero when already adjacent or identical).
    pub fn swaps_needed(&self, a: PhysQubit, b: PhysQubit) -> u32 {
        self.get(a, b).saturating_sub(1)
    }

    /// The graph diameter (maximum finite pairwise distance).
    pub fn diameter(&self) -> u32 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE_HOPS)
            .max()
            .unwrap_or(0)
    }
}

/// Dense all-pairs matrix of reliability distances with next-hop
/// reconstruction.
///
/// The weight of traversing link `e` is `cost(e) >= 0`, supplied by the
/// caller (VQM uses `−ln((1 − e2q)³)`, the failure weight of a SWAP).
/// Entry `(a, b)` is the minimum total weight over all paths.
///
/// # Examples
///
/// ```
/// use quva_device::{ReliabilityMatrix, Topology};
/// use quva_circuit::PhysQubit;
///
/// let t = Topology::ring(4);
/// // all links equally good: reliability path == shortest path
/// let m = ReliabilityMatrix::of(&t, |_| 1.0);
/// assert_eq!(m.get(PhysQubit(0), PhysQubit(2)), 2.0);
/// let path = m.path(PhysQubit(0), PhysQubit(2)).unwrap();
/// assert_eq!(path.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ReliabilityMatrix {
    n: usize,
    dist: Vec<f64>,
    /// next[s*n + v] = the neighbor of s on a best s→v path.
    next: Vec<u32>,
}

const NO_NEXT: u32 = u32::MAX;

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap on cost; ties by node for determinism
        other.cost.total_cmp(&self.cost).then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl ReliabilityMatrix {
    /// Builds the matrix with one Dijkstra pass per qubit.
    ///
    /// `link_cost` maps a link id to its non-negative traversal weight.
    ///
    /// # Panics
    ///
    /// Panics if `link_cost` returns a negative or non-finite weight.
    pub fn of(topology: &Topology, link_cost: impl Fn(usize) -> f64) -> Self {
        Self::of_filtered(topology, |_| true, link_cost)
    }

    /// Builds the matrix over the *active* coupling graph of a device:
    /// disabled links are never traversed and `link_cost` is only
    /// evaluated for enabled link ids.
    ///
    /// # Panics
    ///
    /// Panics if `link_cost` returns a negative or non-finite weight for
    /// an enabled link.
    pub fn of_active(device: &Device, link_cost: impl Fn(usize) -> f64) -> Self {
        Self::of_filtered(device.topology(), |id| device.link_enabled(id), link_cost)
    }

    fn of_filtered(
        topology: &Topology,
        enabled: impl Fn(usize) -> bool,
        link_cost: impl Fn(usize) -> f64,
    ) -> Self {
        let n = topology.num_qubits();
        // Disabled links carry infinite cost, which Dijkstra never relaxes
        // over, so they behave exactly like absent links.
        let costs: Vec<f64> = (0..topology.num_links())
            .map(|id| {
                if !enabled(id) {
                    return f64::INFINITY;
                }
                let c = link_cost(id);
                assert!(c.is_finite() && c >= 0.0, "link {id} has invalid cost {c}");
                c
            })
            .collect();
        let mut dist = vec![f64::INFINITY; n * n];
        let mut next = vec![NO_NEXT; n * n];
        for s in 0..n {
            dist[s * n + s] = 0.0;
            let mut heap = BinaryHeap::new();
            heap.push(HeapEntry { cost: 0.0, node: s });
            while let Some(HeapEntry { cost, node }) = heap.pop() {
                if cost > dist[s * n + node] {
                    continue;
                }
                for nb in topology.neighbors(PhysQubit(node as u32)) {
                    let id = topology
                        .link_id(PhysQubit(node as u32), nb)
                        .unwrap_or_else(|| unreachable!("neighbor implies link"));
                    let nd = cost + costs[id];
                    let ni = nb.index();
                    if nd < dist[s * n + ni] {
                        dist[s * n + ni] = nd;
                        next[s * n + ni] = if node == s { ni as u32 } else { next[s * n + node] };
                        heap.push(HeapEntry { cost: nd, node: ni });
                    }
                }
            }
        }
        ReliabilityMatrix { n, dist, next }
    }

    /// Minimum accumulated weight between two qubits; `f64::INFINITY` if
    /// disconnected.
    pub fn get(&self, a: PhysQubit, b: PhysQubit) -> f64 {
        self.dist[a.index() * self.n + b.index()]
    }

    /// A minimum-weight path from `a` to `b` inclusive of both
    /// endpoints, or `None` if disconnected.
    pub fn path(&self, a: PhysQubit, b: PhysQubit) -> Option<Vec<PhysQubit>> {
        if a == b {
            return Some(vec![a]);
        }
        if self.dist[a.index() * self.n + b.index()].is_infinite() {
            return None;
        }
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            // next[cur][b] is the first hop of a best cur→b path; walking
            // hop by hop reconstructs the full path.
            let step = self.next_hop(cur, b)?;
            path.push(step);
            cur = step;
            assert!(path.len() <= self.n + 1, "path reconstruction cycled");
        }
        Some(path)
    }

    /// The first hop of a best path from `a` towards `b`, or `None` when
    /// unreachable or `a == b`.
    pub fn next_hop(&self, a: PhysQubit, b: PhysQubit) -> Option<PhysQubit> {
        if a == b {
            return None;
        }
        let v = self.next[a.index() * self.n + b.index()];
        if v == NO_NEXT {
            None
        } else {
            Some(PhysQubit(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_matrix_on_line() {
        let t = Topology::linear(5);
        let m = HopMatrix::of(&t);
        assert_eq!(m.get(PhysQubit(0), PhysQubit(4)), 4);
        assert_eq!(m.swaps_needed(PhysQubit(0), PhysQubit(4)), 3);
        assert_eq!(m.swaps_needed(PhysQubit(0), PhysQubit(1)), 0);
        assert_eq!(m.diameter(), 4);
    }

    #[test]
    fn hop_matrix_is_symmetric() {
        let t = Topology::ibm_q20_tokyo();
        let m = HopMatrix::of(&t);
        for a in t.qubits() {
            for b in t.qubits() {
                assert_eq!(m.get(a, b), m.get(b, a));
            }
        }
    }

    #[test]
    fn hop_matrix_marks_unreachable() {
        let t = Topology::from_links("split", 4, [(0, 1), (2, 3)]);
        let m = HopMatrix::of(&t);
        assert_eq!(m.get(PhysQubit(0), PhysQubit(3)), UNREACHABLE_HOPS);
    }

    #[test]
    fn tokyo_diameter_is_small() {
        let m = HopMatrix::of(&Topology::ibm_q20_tokyo());
        assert!(m.diameter() <= 7);
        assert!(m.diameter() >= 4);
    }

    #[test]
    fn reliability_prefers_cheap_detour() {
        // square 0-1-2 / 0-3-2 where 0-1 is terrible
        let t = Topology::from_links("sq", 4, [(0, 1), (1, 2), (0, 3), (3, 2)]);
        let cost = |id: usize| -> f64 {
            match id {
                0 => 10.0, // 0-1
                _ => 1.0,
            }
        };
        let m = ReliabilityMatrix::of(&t, cost);
        assert_eq!(m.get(PhysQubit(0), PhysQubit(2)), 2.0);
        let p = m.path(PhysQubit(0), PhysQubit(2)).unwrap();
        assert_eq!(p, vec![PhysQubit(0), PhysQubit(3), PhysQubit(2)]);
    }

    #[test]
    fn reliability_path_endpoints() {
        let t = Topology::linear(4);
        let m = ReliabilityMatrix::of(&t, |_| 1.0);
        let p = m.path(PhysQubit(0), PhysQubit(3)).unwrap();
        assert_eq!(p.first(), Some(&PhysQubit(0)));
        assert_eq!(p.last(), Some(&PhysQubit(3)));
        assert_eq!(p.len(), 4);
        assert_eq!(m.path(PhysQubit(2), PhysQubit(2)), Some(vec![PhysQubit(2)]));
    }

    #[test]
    fn reliability_unreachable_is_none() {
        let t = Topology::from_links("split", 4, [(0, 1), (2, 3)]);
        let m = ReliabilityMatrix::of(&t, |_| 1.0);
        assert!(m.path(PhysQubit(0), PhysQubit(2)).is_none());
        assert!(m.get(PhysQubit(0), PhysQubit(2)).is_infinite());
        assert_eq!(m.next_hop(PhysQubit(0), PhysQubit(2)), None);
    }

    #[test]
    fn reliability_matches_hops_under_uniform_cost() {
        let t = Topology::ibm_q20_tokyo();
        let hops = HopMatrix::of(&t);
        let rel = ReliabilityMatrix::of(&t, |_| 1.0);
        for a in t.qubits() {
            for b in t.qubits() {
                assert_eq!(rel.get(a, b) as u32, hops.get(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn active_matrices_skip_disabled_links() {
        use crate::calibration::Calibration;
        // ring 0-1-2-3-0; killing 1-2 forces the long way round
        let t = Topology::ring(4);
        let dev = Device::new(t, |t| Calibration::uniform(t, 0.1, 0.0, 0.0))
            .with_disabled_links([(PhysQubit(1), PhysQubit(2))]);
        let hops = HopMatrix::of_active(&dev);
        assert_eq!(hops.get(PhysQubit(1), PhysQubit(2)), 3);
        let rel = ReliabilityMatrix::of_active(&dev, |_| 1.0);
        assert_eq!(rel.get(PhysQubit(1), PhysQubit(2)), 3.0);
        assert_eq!(
            rel.path(PhysQubit(1), PhysQubit(2)).unwrap(),
            vec![PhysQubit(1), PhysQubit(0), PhysQubit(3), PhysQubit(2)]
        );
    }

    #[test]
    fn active_matrices_report_split_as_unreachable() {
        use crate::calibration::Calibration;
        let t = Topology::linear(4);
        let dev = Device::new(t, |t| Calibration::uniform(t, 0.1, 0.0, 0.0))
            .with_disabled_links([(PhysQubit(1), PhysQubit(2))]);
        let hops = HopMatrix::of_active(&dev);
        assert_eq!(hops.get(PhysQubit(0), PhysQubit(3)), UNREACHABLE_HOPS);
        // cost closure never consulted for the dead link
        let rel = ReliabilityMatrix::of_active(&dev, |id| {
            assert!(dev.link_enabled(id), "cost asked for disabled link {id}");
            1.0
        });
        assert!(rel.get(PhysQubit(0), PhysQubit(3)).is_infinite());
        assert!(rel.path(PhysQubit(0), PhysQubit(3)).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid cost")]
    fn negative_cost_rejected() {
        let t = Topology::linear(2);
        ReliabilityMatrix::of(&t, |_| -1.0);
    }

    #[test]
    fn path_weight_equals_distance() {
        let t = Topology::ibm_q20_tokyo();
        // pseudo-random but deterministic costs
        let m = ReliabilityMatrix::of(&t, |id| 0.5 + ((id * 7919) % 13) as f64 / 5.0);
        let costs: Vec<f64> = (0..t.num_links())
            .map(|id| 0.5 + ((id * 7919) % 13) as f64 / 5.0)
            .collect();
        for a in t.qubits() {
            for b in t.qubits() {
                let p = m.path(a, b).unwrap();
                let total: f64 = p
                    .windows(2)
                    .map(|w| costs[t.link_id(w[0], w[1]).expect("path uses links")])
                    .sum();
                assert!(
                    (total - m.get(a, b)).abs() < 1e-9,
                    "{a}->{b} path weight mismatch"
                );
            }
        }
    }
}
