//! # quva-device — NISQ device substrate
//!
//! Everything the variation-aware policies need to know about a machine:
//!
//! * [`Topology`] — the coupling graph, with the paper's layouts
//!   ([`Topology::ibm_q20_tokyo`], [`Topology::ibm_q5_tenerife`]) and
//!   generic meshes;
//! * [`Calibration`] — one characterization snapshot: T1/T2, 1Q/readout
//!   error per qubit, 2Q error per link;
//! * [`CalibrationGenerator`] — seeded synthetic characterization
//!   reproducing the statistics the paper measured on IBM-Q20 (§3);
//! * [`Device`] — topology + calibration, the policy input;
//! * [`HopMatrix`] / [`ReliabilityMatrix`] — the two distance metrics
//!   (SWAP count vs failure weight);
//! * [`node_strengths`] / [`k_core_numbers`] / [`strongest_subgraph`] —
//!   the strength machinery behind VQA.
//!
//! # Examples
//!
//! ```
//! use quva_device::Device;
//! use quva_circuit::PhysQubit;
//!
//! let dev = Device::ibm_q20();
//! // The worst link of Fig. 9: Q14–Q18 at 15% error.
//! assert_eq!(dev.link_error(PhysQubit(14), PhysQubit(18)), Some(0.15));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod calgen;
mod calibration;
mod device;
mod distances;
mod layouts;
mod log;
pub mod snapshot;
mod strength;
mod topology;
pub mod validate;

pub use calgen::{
    ibm_q20_average_calibration, ibm_q5_average_calibration, CalibrationGenerator, VariationProfile,
};
pub use calibration::{Calibration, CalibrationError, GateDurations};
pub use device::Device;
pub use distances::{HopMatrix, ReliabilityMatrix, UNREACHABLE_HOPS};
pub use log::CalibrationLog;
pub use snapshot::SnapshotError;
pub use strength::{
    best_region, candidate_regions, k_core_numbers, node_strengths, region_internal_success,
    strongest_subgraph, try_strongest_subgraph,
};
pub use topology::{Link, Topology};
pub use validate::{
    CalField, CalibrationIssue, CalibrationRejected, CalibrationReport, IssueKind, RawCalibration,
    SanitizePolicy,
};
