//! A calibration history: the sequence of characterization snapshots a
//! machine accumulates across calibration cycles (the paper's 52 days
//! of IBM-Q20 reports, §3).

use crate::calibration::{Calibration, CalibrationError};
use crate::topology::Topology;

/// An append-only log of calibration snapshots for one device, with the
/// aggregate queries the paper's analysis needs: per-link time series,
/// per-link means, and the average calibration (the Fig. 9 map is the
/// average over the measurement window).
///
/// # Examples
///
/// ```
/// use quva_device::{CalibrationGenerator, CalibrationLog, Topology, VariationProfile};
///
/// let topo = Topology::ibm_q20_tokyo();
/// let mut g = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 1);
/// let mut log = CalibrationLog::new(&topo);
/// for day in g.daily_series(&topo, 10) {
///     log.push(day).unwrap();
/// }
/// assert_eq!(log.len(), 10);
/// let series = log.link_series(0);
/// assert_eq!(series.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationLog {
    num_qubits: usize,
    num_links: usize,
    entries: Vec<Calibration>,
}

impl CalibrationLog {
    /// Creates an empty log for a device shape.
    pub fn new(topology: &Topology) -> Self {
        CalibrationLog {
            num_qubits: topology.num_qubits(),
            num_links: topology.num_links(),
            entries: Vec::new(),
        }
    }

    /// Appends a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`CalibrationError`] if the snapshot's shape does not
    /// match the log's device.
    pub fn push(&mut self, calibration: Calibration) -> Result<(), CalibrationError> {
        if calibration.two_qubit_errors().len() != self.num_links {
            return Err(CalibrationError::LinkCountMismatch {
                expected: self.num_links,
                actual: calibration.two_qubit_errors().len(),
            });
        }
        if calibration.t1_table().len() != self.num_qubits {
            return Err(CalibrationError::QubitCountMismatch {
                field: "t1",
                expected: self.num_qubits,
                actual: calibration.t1_table().len(),
            });
        }
        self.entries.push(calibration);
        Ok(())
    }

    /// Number of snapshots recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log has no snapshots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The snapshot at position `day`, if recorded.
    pub fn get(&self, day: usize) -> Option<&Calibration> {
        self.entries.get(day)
    }

    /// Iterates over snapshots in recording order.
    pub fn iter(&self) -> std::slice::Iter<'_, Calibration> {
        self.entries.iter()
    }

    /// The two-qubit error of one link across all snapshots, in order —
    /// the Fig. 8 time series.
    ///
    /// # Panics
    ///
    /// Panics if `link_id` is out of range (when the log is non-empty).
    pub fn link_series(&self, link_id: usize) -> Vec<f64> {
        self.entries.iter().map(|c| c.two_qubit_error(link_id)).collect()
    }

    /// The mean two-qubit error of one link over the window.
    ///
    /// # Panics
    ///
    /// Panics if the log is empty or `link_id` is out of range.
    pub fn link_mean(&self, link_id: usize) -> f64 {
        assert!(!self.is_empty(), "no snapshots recorded");
        self.link_series(link_id).iter().sum::<f64>() / self.len() as f64
    }

    /// Link ids ordered from strongest (lowest mean error) to weakest —
    /// the ranking Fig. 8 picks its three example links from.
    pub fn links_by_strength(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.num_links).collect();
        ids.sort_by(|&a, &b| self.link_mean(a).total_cmp(&self.link_mean(b)));
        ids
    }

    /// The element-wise average calibration over the window — the
    /// paper's primary evaluation configuration (Fig. 9 is the average
    /// map over 52 days).
    ///
    /// Gate durations are taken from the first snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the log is empty.
    pub fn average(&self, topology: &Topology) -> Calibration {
        assert!(!self.is_empty(), "no snapshots recorded");
        let n = self.len() as f64;
        let avg = |extract: &dyn Fn(&Calibration) -> &[f64], len: usize| -> Vec<f64> {
            let mut acc = vec![0.0; len];
            for c in &self.entries {
                for (a, v) in acc.iter_mut().zip(extract(c)) {
                    *a += v;
                }
            }
            acc.iter().map(|v| v / n).collect()
        };
        Calibration::new(
            topology,
            avg(&|c| c.t1_table(), self.num_qubits),
            avg(&|c| c.t2_table(), self.num_qubits),
            avg(&|c| c.one_qubit_errors(), self.num_qubits),
            avg(&|c| c.readout_errors(), self.num_qubits),
            avg(&|c| c.two_qubit_errors(), self.num_links),
            self.entries[0].durations(),
        )
        .unwrap_or_else(|e| unreachable!("averages of valid calibrations stay valid: {e}"))
    }
}

impl Extend<Calibration> for CalibrationLog {
    /// # Panics
    ///
    /// Panics if a snapshot does not match the device shape.
    fn extend<T: IntoIterator<Item = Calibration>>(&mut self, iter: T) {
        for c in iter {
            self.push(c)
                .unwrap_or_else(|e| panic!("extended snapshots must match the device shape: {e}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calgen::{CalibrationGenerator, VariationProfile};

    fn filled_log(days: usize) -> (Topology, CalibrationLog) {
        let topo = Topology::ibm_q20_tokyo();
        let mut g = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 5);
        let mut log = CalibrationLog::new(&topo);
        log.extend(g.daily_series(&topo, days));
        (topo, log)
    }

    #[test]
    fn push_validates_shape() {
        let topo20 = Topology::ibm_q20_tokyo();
        let topo5 = Topology::ibm_q5_tenerife();
        let mut log = CalibrationLog::new(&topo20);
        let wrong = Calibration::uniform(&topo5, 0.05, 0.0, 0.0);
        assert!(log.push(wrong).is_err());
        assert!(log.push(Calibration::uniform(&topo20, 0.05, 0.0, 0.0)).is_ok());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn push_reports_qubit_mismatch_when_link_counts_agree() {
        // ring(3) and linear(4) both have 3 links, so the link-count
        // check passes and the qubit-count branch must catch the error
        let mut log = CalibrationLog::new(&Topology::ring(3));
        let err = log
            .push(Calibration::uniform(&Topology::linear(4), 0.05, 0.0, 0.0))
            .unwrap_err();
        assert!(matches!(
            err,
            CalibrationError::QubitCountMismatch {
                field: "t1",
                expected: 3,
                actual: 4
            }
        ));
        assert!(log.is_empty());
    }

    #[test]
    fn push_reports_link_mismatch_first() {
        let mut log = CalibrationLog::new(&Topology::ring(3));
        let err = log
            .push(Calibration::uniform(&Topology::linear(3), 0.05, 0.0, 0.0))
            .unwrap_err();
        assert!(matches!(
            err,
            CalibrationError::LinkCountMismatch {
                expected: 3,
                actual: 2
            }
        ));
    }

    #[test]
    fn series_and_means_are_consistent() {
        let (_, log) = filled_log(8);
        for id in [0, 10, 37] {
            let series = log.link_series(id);
            assert_eq!(series.len(), 8);
            let mean = series.iter().sum::<f64>() / 8.0;
            assert!((log.link_mean(id) - mean).abs() < 1e-12);
        }
    }

    #[test]
    fn strength_ranking_is_monotone() {
        let (_, log) = filled_log(12);
        let ranked = log.links_by_strength();
        assert_eq!(ranked.len(), 38);
        for w in ranked.windows(2) {
            assert!(log.link_mean(w[0]) <= log.link_mean(w[1]) + 1e-12);
        }
    }

    #[test]
    fn average_is_elementwise() {
        let (topo, log) = filled_log(5);
        let avg = log.average(&topo);
        let manual: f64 = (0..5)
            .map(|d| log.get(d).unwrap().two_qubit_error(3))
            .sum::<f64>()
            / 5.0;
        assert!((avg.two_qubit_error(3) - manual).abs() < 1e-12);
        let manual_t1: f64 = (0..5).map(|d| log.get(d).unwrap().t1_us(7)).sum::<f64>() / 5.0;
        assert!((avg.t1_us(7) - manual_t1).abs() < 1e-12);
    }

    #[test]
    fn average_smooths_daily_jitter() {
        let (topo, log) = filled_log(30);
        let avg = log.average(&topo);
        // per-link averages vary less than single days do: the average
        // map's deviation from the per-link mean is zero by construction
        for id in 0..topo.num_links() {
            assert!((avg.two_qubit_error(id) - log.link_mean(id)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "no snapshots")]
    fn empty_average_panics() {
        let topo = Topology::linear(3);
        CalibrationLog::new(&topo).average(&topo);
    }
}
