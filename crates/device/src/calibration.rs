//! Per-device calibration data: the error rates and coherence times that
//! the variation-aware policies consume.
//!
//! A [`Calibration`] is one characterization snapshot of a device — what
//! IBM publishes after each calibration cycle (§3 of the paper): T1/T2
//! coherence times and readout/1Q error per qubit, plus a 2Q error rate
//! per coupling link.

use std::error::Error;
use std::fmt;

use crate::topology::Topology;

/// Wall-clock durations of the primitive operations, used by the
/// coherence-error model (§4.4: gate errors dominate, but decoherence of
/// idle qubits is still modeled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateDurations {
    /// Duration of a single-qubit gate, nanoseconds.
    pub one_qubit_ns: f64,
    /// Duration of a CNOT, nanoseconds.
    pub two_qubit_ns: f64,
    /// Duration of a readout operation, nanoseconds.
    pub readout_ns: f64,
}

impl Default for GateDurations {
    /// IBM-Q20-era typical values: 50 ns single-qubit pulses, 300 ns
    /// CNOTs, 3.5 µs readout.
    fn default() -> Self {
        GateDurations {
            one_qubit_ns: 50.0,
            two_qubit_ns: 300.0,
            readout_ns: 3500.0,
        }
    }
}

/// Error returned when calibration data is inconsistent with its device.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrationError {
    /// A per-qubit vector had the wrong length.
    QubitCountMismatch {
        /// Which field was wrong.
        field: &'static str,
        /// Expected length (device qubit count).
        expected: usize,
        /// Observed length.
        actual: usize,
    },
    /// The per-link error vector had the wrong length.
    LinkCountMismatch {
        /// Expected length (device link count).
        expected: usize,
        /// Observed length.
        actual: usize,
    },
    /// A probability fell outside `[0, 1)`.
    InvalidProbability {
        /// Which field was wrong.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A coherence time was not strictly positive.
    InvalidCoherence {
        /// The offending value in microseconds.
        value: f64,
    },
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::QubitCountMismatch {
                field,
                expected,
                actual,
            } => {
                write!(f, "{field} has {actual} entries, device has {expected} qubits")
            }
            CalibrationError::LinkCountMismatch { expected, actual } => {
                write!(
                    f,
                    "two-qubit error table has {actual} entries, device has {expected} links"
                )
            }
            CalibrationError::InvalidProbability { field, value } => {
                write!(
                    f,
                    "{field} contains {value}, which is not a probability in [0, 1)"
                )
            }
            CalibrationError::InvalidCoherence { value } => {
                write!(f, "coherence time {value} µs is not strictly positive")
            }
        }
    }
}

impl Error for CalibrationError {}

/// One characterization snapshot of a device.
///
/// Two-qubit errors are indexed by *link id* (the link's position in
/// [`Topology::links`]); per-qubit quantities by qubit index.
///
/// # Examples
///
/// ```
/// use quva_device::{Calibration, Topology};
///
/// let topo = Topology::linear(3);
/// let cal = Calibration::uniform(&topo, 0.04, 0.001, 0.03);
/// assert_eq!(cal.two_qubit_error(0), 0.04);
/// assert!((cal.mean_two_qubit_error() - 0.04).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    t1_us: Vec<f64>,
    t2_us: Vec<f64>,
    err_1q: Vec<f64>,
    err_readout: Vec<f64>,
    err_2q: Vec<f64>,
    durations: GateDurations,
}

impl Calibration {
    /// Builds a calibration from explicit tables, validating every entry
    /// against the device shape.
    ///
    /// # Errors
    ///
    /// Returns a [`CalibrationError`] if a table has the wrong length,
    /// a probability is outside `[0, 1)`, or a coherence time is not
    /// positive.
    pub fn new(
        topology: &Topology,
        t1_us: Vec<f64>,
        t2_us: Vec<f64>,
        err_1q: Vec<f64>,
        err_readout: Vec<f64>,
        err_2q: Vec<f64>,
        durations: GateDurations,
    ) -> Result<Self, CalibrationError> {
        let n = topology.num_qubits();
        for (field, v) in [
            ("t1", &t1_us),
            ("t2", &t2_us),
            ("err_1q", &err_1q),
            ("err_readout", &err_readout),
        ] {
            if v.len() != n {
                return Err(CalibrationError::QubitCountMismatch {
                    field,
                    expected: n,
                    actual: v.len(),
                });
            }
        }
        if err_2q.len() != topology.num_links() {
            return Err(CalibrationError::LinkCountMismatch {
                expected: topology.num_links(),
                actual: err_2q.len(),
            });
        }
        for &t in t1_us.iter().chain(t2_us.iter()) {
            if t.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(CalibrationError::InvalidCoherence { value: t });
            }
        }
        for (field, v) in [
            ("err_1q", &err_1q),
            ("err_readout", &err_readout),
            ("err_2q", &err_2q),
        ] {
            for &p in v.iter() {
                if !(0.0..1.0).contains(&p) {
                    return Err(CalibrationError::InvalidProbability { field, value: p });
                }
            }
        }
        Ok(Calibration {
            t1_us,
            t2_us,
            err_1q,
            err_readout,
            err_2q,
            durations,
        })
    }

    /// A variation-free calibration: every link has 2Q error `err_2q`,
    /// every qubit has 1Q error `err_1q` and readout error
    /// `err_readout`, with generous coherence times.
    ///
    /// Under a uniform calibration the variation-aware policies must
    /// coincide with the baseline (tested property).
    ///
    /// **Invariant:** the result is always a valid calibration. Error
    /// rates outside `[0, 1)` (including NaN) are clamped into range
    /// rather than rejected — NaN maps to just below 1 so a garbage
    /// rate reads as "assume the worst", never as a crash.
    pub fn uniform(topology: &Topology, err_2q: f64, err_1q: f64, err_readout: f64) -> Self {
        let n = topology.num_qubits();
        match Calibration::new(
            topology,
            vec![80.0; n],
            vec![40.0; n],
            vec![clamp_error_rate(err_1q); n],
            vec![clamp_error_rate(err_readout); n],
            vec![clamp_error_rate(err_2q); topology.num_links()],
            GateDurations::default(),
        ) {
            Ok(cal) => cal,
            // clamp_error_rate guarantees every probability is in
            // range, coherence times are constants, and table lengths
            // come from the topology itself
            Err(_) => unreachable!("clamped uniform calibration is always valid"),
        }
    }

    /// T1 relaxation time of `q`, microseconds.
    pub fn t1_us(&self, q: usize) -> f64 {
        self.t1_us[q]
    }

    /// T2 dephasing time of `q`, microseconds.
    pub fn t2_us(&self, q: usize) -> f64 {
        self.t2_us[q]
    }

    /// Single-qubit gate error rate of `q`.
    pub fn one_qubit_error(&self, q: usize) -> f64 {
        self.err_1q[q]
    }

    /// Readout error rate of `q`.
    pub fn readout_error(&self, q: usize) -> f64 {
        self.err_readout[q]
    }

    /// Two-qubit (CNOT) error rate of the link with id `link_id`.
    pub fn two_qubit_error(&self, link_id: usize) -> f64 {
        self.err_2q[link_id]
    }

    /// Overwrites the two-qubit error of one link.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn set_two_qubit_error(&mut self, link_id: usize, p: f64) {
        assert!((0.0..1.0).contains(&p), "error rate {p} out of range");
        self.err_2q[link_id] = p;
    }

    /// The whole per-link error table, indexed by link id.
    pub fn two_qubit_errors(&self) -> &[f64] {
        &self.err_2q
    }

    /// All T1 values, indexed by qubit.
    pub fn t1_table(&self) -> &[f64] {
        &self.t1_us
    }

    /// All T2 values, indexed by qubit.
    pub fn t2_table(&self) -> &[f64] {
        &self.t2_us
    }

    /// All single-qubit error rates, indexed by qubit.
    pub fn one_qubit_errors(&self) -> &[f64] {
        &self.err_1q
    }

    /// All readout error rates, indexed by qubit.
    pub fn readout_errors(&self) -> &[f64] {
        &self.err_readout
    }

    /// Gate durations for the coherence model.
    pub fn durations(&self) -> GateDurations {
        self.durations
    }

    /// Mean two-qubit error across links.
    pub fn mean_two_qubit_error(&self) -> f64 {
        mean(&self.err_2q)
    }

    /// Population standard deviation of two-qubit error across links.
    pub fn std_two_qubit_error(&self) -> f64 {
        std_dev(&self.err_2q)
    }

    /// `(best, worst)` two-qubit error across links.
    pub fn two_qubit_error_range(&self) -> (f64, f64) {
        let best = self.err_2q.iter().copied().fold(f64::INFINITY, f64::min);
        let worst = self.err_2q.iter().copied().fold(0.0f64, f64::max);
        (best, worst)
    }

    /// Worst/best two-qubit error ratio — the paper's "7.5x" spread
    /// metric (§3.5).
    pub fn variation_ratio(&self) -> f64 {
        let (best, worst) = self.two_qubit_error_range();
        worst / best
    }

    /// Coefficient of variation (σ/µ) of the two-qubit errors — the
    /// knob Table 2 scales.
    pub fn two_qubit_cov(&self) -> f64 {
        self.std_two_qubit_error() / self.mean_two_qubit_error()
    }

    /// Returns a copy with every error rate multiplied by `factor`
    /// (coherence times untouched). Used for the Table 2 "10x lower
    /// error rate" scenario.
    ///
    /// # Panics
    ///
    /// Panics if scaling would push an error rate outside `[0, 1)`.
    pub fn with_errors_scaled(&self, factor: f64) -> Self {
        let scale = |v: &[f64], field: &str| -> Vec<f64> {
            v.iter()
                .map(|&p| {
                    let s = p * factor;
                    assert!(
                        (0.0..1.0).contains(&s),
                        "scaling {field} by {factor} leaves range"
                    );
                    s
                })
                .collect()
        };
        Calibration {
            t1_us: self.t1_us.clone(),
            t2_us: self.t2_us.clone(),
            err_1q: scale(&self.err_1q, "err_1q"),
            err_readout: scale(&self.err_readout, "err_readout"),
            err_2q: scale(&self.err_2q, "err_2q"),
            durations: self.durations,
        }
    }

    /// Returns a copy whose two-qubit errors are spread around their
    /// mean by `cov_factor` (1.0 = unchanged, 2.0 = double the
    /// coefficient of variation), clamped to `[1e-5, 0.5]`. Used for the
    /// Table 2 "2×Cov" scenario.
    pub fn with_two_qubit_cov_scaled(&self, cov_factor: f64) -> Self {
        let mu = self.mean_two_qubit_error();
        let err_2q = self
            .err_2q
            .iter()
            .map(|&p| (mu + (p - mu) * cov_factor).clamp(1e-5, 0.5))
            .collect();
        Calibration {
            err_2q,
            ..self.clone()
        }
    }
}

/// Forces an error rate into the valid `[0, 1)` range: negatives become
/// 0, values at or above 1 become just below 1, and NaN — an *unknown*
/// rate — pessimistically becomes just below 1 as well.
pub(crate) fn clamp_error_rate(p: f64) -> f64 {
    const MAX: f64 = 1.0 - 1e-6;
    if p.is_nan() {
        MAX
    } else {
        p.clamp(0.0, MAX)
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

fn std_dev(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::linear(4)
    }

    #[test]
    fn uniform_fills_everything() {
        let t = topo();
        let c = Calibration::uniform(&t, 0.05, 0.001, 0.02);
        assert_eq!(c.two_qubit_errors().len(), 3);
        assert_eq!(c.one_qubit_error(2), 0.001);
        assert_eq!(c.readout_error(0), 0.02);
        assert_eq!(c.variation_ratio(), 1.0);
        assert!(c.std_two_qubit_error() < 1e-12);
    }

    #[test]
    fn uniform_clamps_out_of_range_rates() {
        let t = topo();
        let c = Calibration::uniform(&t, 1.7, -0.3, f64::NAN);
        assert_eq!(c.two_qubit_error(0), 1.0 - 1e-6);
        assert_eq!(c.one_qubit_error(0), 0.0);
        assert_eq!(c.readout_error(0), 1.0 - 1e-6);
    }

    #[test]
    fn new_rejects_wrong_qubit_count() {
        let t = topo();
        let err = Calibration::new(
            &t,
            vec![80.0; 3],
            vec![40.0; 4],
            vec![0.0; 4],
            vec![0.0; 4],
            vec![0.01; 3],
            GateDurations::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CalibrationError::QubitCountMismatch { field: "t1", .. }
        ));
    }

    #[test]
    fn new_rejects_wrong_link_count() {
        let t = topo();
        let err = Calibration::new(
            &t,
            vec![80.0; 4],
            vec![40.0; 4],
            vec![0.0; 4],
            vec![0.0; 4],
            vec![0.01; 5],
            GateDurations::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CalibrationError::LinkCountMismatch {
                expected: 3,
                actual: 5
            }
        ));
    }

    #[test]
    fn new_rejects_bad_probability() {
        let t = topo();
        let err = Calibration::new(
            &t,
            vec![80.0; 4],
            vec![40.0; 4],
            vec![0.0; 4],
            vec![0.0; 4],
            vec![1.5; 3],
            GateDurations::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CalibrationError::InvalidProbability { field: "err_2q", .. }
        ));
    }

    #[test]
    fn new_rejects_nonpositive_coherence() {
        let t = topo();
        let err = Calibration::new(
            &t,
            vec![0.0; 4],
            vec![40.0; 4],
            vec![0.0; 4],
            vec![0.0; 4],
            vec![0.01; 3],
            GateDurations::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CalibrationError::InvalidCoherence { .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CalibrationError::LinkCountMismatch {
            expected: 3,
            actual: 5,
        };
        assert!(e.to_string().contains("3 links"));
    }

    #[test]
    fn statistics() {
        let t = topo();
        let mut c = Calibration::uniform(&t, 0.04, 0.001, 0.02);
        c.set_two_qubit_error(0, 0.02);
        c.set_two_qubit_error(2, 0.15);
        let (best, worst) = c.two_qubit_error_range();
        assert_eq!(best, 0.02);
        assert_eq!(worst, 0.15);
        assert!((c.variation_ratio() - 7.5).abs() < 1e-12);
        assert!((c.mean_two_qubit_error() - 0.07).abs() < 1e-12);
    }

    #[test]
    fn scaled_errors_shrink_uniformly() {
        let t = topo();
        let c = Calibration::uniform(&t, 0.04, 0.004, 0.02).with_errors_scaled(0.1);
        assert!((c.two_qubit_error(0) - 0.004).abs() < 1e-12);
        assert!((c.one_qubit_error(0) - 0.0004).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "leaves range")]
    fn scaling_up_past_one_panics() {
        let t = topo();
        let _ = Calibration::uniform(&t, 0.5, 0.0, 0.0).with_errors_scaled(3.0);
    }

    #[test]
    fn cov_scaling_doubles_spread() {
        let t = topo();
        let mut c = Calibration::uniform(&t, 0.04, 0.0, 0.0);
        c.set_two_qubit_error(0, 0.03);
        c.set_two_qubit_error(2, 0.05);
        let spread = c.with_two_qubit_cov_scaled(2.0);
        assert!((spread.mean_two_qubit_error() - c.mean_two_qubit_error()).abs() < 1e-12);
        assert!((spread.two_qubit_cov() / c.two_qubit_cov() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cov_scaling_clamps_low_end() {
        let t = topo();
        let mut c = Calibration::uniform(&t, 0.01, 0.0, 0.0);
        c.set_two_qubit_error(0, 0.0001);
        let spread = c.with_two_qubit_cov_scaled(10.0);
        for &p in spread.two_qubit_errors() {
            assert!((1e-5..0.5).contains(&p) || p == 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_error_validates() {
        let t = topo();
        let mut c = Calibration::uniform(&t, 0.01, 0.0, 0.0);
        c.set_two_qubit_error(0, 1.0);
    }
}
