//! Validation and sanitization of calibration data from the outside
//! world.
//!
//! Live characterization feeds are messy: entries go missing, NaNs leak
//! out of fitting pipelines, error rates drift out of `[0, 1)`, and T2
//! occasionally exceeds its physical `2·T1` bound. A production compiler
//! must degrade one request when that happens, not crash the process.
//!
//! The flow is: parse into a [`RawCalibration`] (any `f64` accepted),
//! run [`RawCalibration::sanitize`] under a [`SanitizePolicy`], and get
//! back a guaranteed-valid [`Calibration`] plus a [`CalibrationReport`]
//! listing every defect and how it was repaired — or a typed
//! [`CalibrationRejected`] error when the policy (or an irreparable
//! shape mismatch) forbids repair.

use std::error::Error;
use std::fmt;

use crate::calibration::{Calibration, GateDurations};
use crate::log::CalibrationLog;
use crate::topology::Topology;

/// Largest error rate a repair may produce: just below 1 so failure
/// weights `−ln(1 − p)` stay finite and the link is effectively avoided.
pub const MAX_ERROR_RATE: f64 = 1.0 - 1e-6;

/// Coherence fallback used when a T1 entry is unusable, microseconds
/// (matches [`Calibration::uniform`]).
pub const FALLBACK_T1_US: f64 = 80.0;

/// Coherence fallback used when a T2 entry is unusable, microseconds
/// (matches [`Calibration::uniform`]).
pub const FALLBACK_T2_US: f64 = 40.0;

/// The five calibration tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CalField {
    /// T1 relaxation times, per qubit.
    T1,
    /// T2 dephasing times, per qubit.
    T2,
    /// Single-qubit gate error rates, per qubit.
    Err1q,
    /// Readout error rates, per qubit.
    ErrReadout,
    /// Two-qubit error rates, per link id.
    Err2q,
}

impl CalField {
    /// The snake_case field name used in snapshots and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            CalField::T1 => "t1_us",
            CalField::T2 => "t2_us",
            CalField::Err1q => "err_1q",
            CalField::ErrReadout => "err_readout",
            CalField::Err2q => "err_2q",
        }
    }

    fn is_coherence(self) -> bool {
        matches!(self, CalField::T1 | CalField::T2)
    }
}

impl fmt::Display for CalField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What is wrong with an entry (or a whole table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IssueKind {
    /// The value is NaN.
    NotANumber,
    /// An error rate is negative.
    NegativeErrorRate,
    /// An error rate is `>= 1` (including `+inf`).
    ErrorRateAtOrAboveOne,
    /// A coherence time is zero, negative, or infinite.
    NonPositiveCoherence,
    /// T2 exceeds its physical bound `2·T1` for the same qubit.
    CoherenceInversion {
        /// The qubit's T1 in microseconds.
        t1_us: f64,
    },
    /// The whole table has the wrong number of entries. Irreparable:
    /// sanitization rejects the snapshot under every policy.
    WrongLength {
        /// Entries the device shape requires.
        expected: usize,
        /// Entries observed.
        actual: usize,
    },
}

impl fmt::Display for IssueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueKind::NotANumber => write!(f, "not a number"),
            IssueKind::NegativeErrorRate => write!(f, "negative error rate"),
            IssueKind::ErrorRateAtOrAboveOne => write!(f, "error rate at or above 1"),
            IssueKind::NonPositiveCoherence => write!(f, "non-positive coherence time"),
            IssueKind::CoherenceInversion { t1_us } => {
                write!(f, "exceeds the physical bound 2·T1 = {} µs", 2.0 * t1_us)
            }
            IssueKind::WrongLength { expected, actual } => {
                write!(f, "has {actual} entries, device shape requires {expected}")
            }
        }
    }
}

/// How a defective entry was repaired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Repair {
    /// Replaced with a clamped / fallback value.
    Clamped(f64),
    /// Replaced with the historical mean from a [`CalibrationLog`].
    Imputed(f64),
}

impl Repair {
    /// The value the entry was replaced with.
    pub fn value(self) -> f64 {
        match self {
            Repair::Clamped(v) | Repair::Imputed(v) => v,
        }
    }
}

/// One defect found in a snapshot, plus its repair when the policy
/// allowed one.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationIssue {
    /// The table the defect is in.
    pub field: CalField,
    /// The entry index (qubit index or link id); `None` for
    /// whole-table defects.
    pub index: Option<usize>,
    /// The offending value (0.0 for whole-table defects).
    pub value: f64,
    /// The defect class.
    pub kind: IssueKind,
    /// The repair applied, if any.
    pub repair: Option<Repair>,
}

impl fmt::Display for CalibrationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}[{i}] = {}: {}", self.field, self.value, self.kind)?,
            None => write!(f, "{} {}", self.field, self.kind)?,
        }
        match self.repair {
            Some(Repair::Clamped(v)) => write!(f, " (clamped to {v})"),
            Some(Repair::Imputed(v)) => write!(f, " (imputed from history: {v})"),
            None => Ok(()),
        }
    }
}

/// What to do with defective entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizePolicy {
    /// Any defect rejects the whole snapshot (`--strict`).
    Reject,
    /// Repair in place: NaN or super-unity error rates become
    /// [`MAX_ERROR_RATE`] (pessimistic — the scheduler will route
    /// around them), negative rates become 0, unusable coherence times
    /// fall back to [`FALLBACK_T1_US`]/[`FALLBACK_T2_US`], and inverted
    /// T2 is capped at `2·T1`.
    #[default]
    Clamp,
    /// Like [`SanitizePolicy::Clamp`], but defective entries take their
    /// historical mean from a [`CalibrationLog`] when one is available
    /// (falling back to the clamp repair entry-by-entry otherwise).
    ImputeFromHistory,
}

impl fmt::Display for SanitizePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanitizePolicy::Reject => write!(f, "reject"),
            SanitizePolicy::Clamp => write!(f, "clamp"),
            SanitizePolicy::ImputeFromHistory => write!(f, "impute-from-history"),
        }
    }
}

/// The outcome of validating (and possibly repairing) one snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    policy: SanitizePolicy,
    issues: Vec<CalibrationIssue>,
}

impl CalibrationReport {
    /// The policy the snapshot was processed under.
    pub fn policy(&self) -> SanitizePolicy {
        self.policy
    }

    /// Every defect found, in field order then entry order.
    pub fn issues(&self) -> &[CalibrationIssue] {
        &self.issues
    }

    /// Whether the snapshot had no defects at all.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Number of entries that were repaired.
    pub fn repaired(&self) -> usize {
        self.issues.iter().filter(|i| i.repair.is_some()).count()
    }

    /// Whether the snapshot contains an irreparable shape mismatch.
    pub fn has_shape_mismatch(&self) -> bool {
        self.issues
            .iter()
            .any(|i| matches!(i.kind, IssueKind::WrongLength { .. }))
    }

    /// One diagnostic line per issue, ready for stderr.
    pub fn diagnostics(&self) -> Vec<String> {
        self.issues.iter().map(|i| format!("calibration: {i}")).collect()
    }
}

impl fmt::Display for CalibrationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "calibration clean (policy: {})", self.policy);
        }
        writeln!(
            f,
            "calibration has {} issue(s) under policy '{}', {} repaired:",
            self.issues.len(),
            self.policy,
            self.repaired()
        )?;
        for issue in &self.issues {
            writeln!(f, "  - {issue}")?;
        }
        Ok(())
    }
}

/// A snapshot was refused: the policy was [`SanitizePolicy::Reject`]
/// and a defect was found, or the shape cannot be repaired.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationRejected {
    /// The full defect report.
    pub report: CalibrationReport,
}

impl fmt::Display for CalibrationRejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "calibration snapshot rejected: {}", self.report)
    }
}

impl Error for CalibrationRejected {}

/// Calibration data exactly as received: any `f64` (including NaN and
/// infinities), any table lengths. The only path from a
/// `RawCalibration` to a [`Calibration`] is [`RawCalibration::sanitize`],
/// so no unchecked value can reach the policies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawCalibration {
    /// T1 relaxation times, microseconds, per qubit.
    pub t1_us: Vec<f64>,
    /// T2 dephasing times, microseconds, per qubit.
    pub t2_us: Vec<f64>,
    /// Single-qubit gate error rates, per qubit.
    pub err_1q: Vec<f64>,
    /// Readout error rates, per qubit.
    pub err_readout: Vec<f64>,
    /// Two-qubit error rates, per link id.
    pub err_2q: Vec<f64>,
    /// Gate durations; `None` uses [`GateDurations::default`].
    pub durations: Option<GateDurations>,
}

impl From<&Calibration> for RawCalibration {
    fn from(cal: &Calibration) -> Self {
        RawCalibration {
            t1_us: cal.t1_table().to_vec(),
            t2_us: cal.t2_table().to_vec(),
            err_1q: cal.one_qubit_errors().to_vec(),
            err_readout: cal.readout_errors().to_vec(),
            err_2q: cal.two_qubit_errors().to_vec(),
            durations: Some(cal.durations()),
        }
    }
}

/// Per-entry historical means, when usable history exists.
struct History {
    t1: Vec<f64>,
    t2: Vec<f64>,
    e1q: Vec<f64>,
    ero: Vec<f64>,
    e2q: Vec<f64>,
}

impl History {
    fn from_log(log: &CalibrationLog, num_qubits: usize, num_links: usize) -> Option<Self> {
        let first = log.iter().next()?;
        if first.t1_table().len() != num_qubits || first.two_qubit_errors().len() != num_links {
            return None;
        }
        let n = log.len() as f64;
        let mean_of = |extract: &dyn Fn(&Calibration) -> &[f64], len: usize| -> Vec<f64> {
            let mut acc = vec![0.0; len];
            for cal in log.iter() {
                for (a, v) in acc.iter_mut().zip(extract(cal)) {
                    *a += v;
                }
            }
            for a in &mut acc {
                *a /= n;
            }
            acc
        };
        Some(History {
            t1: mean_of(&|c| c.t1_table(), num_qubits),
            t2: mean_of(&|c| c.t2_table(), num_qubits),
            e1q: mean_of(&|c| c.one_qubit_errors(), num_qubits),
            ero: mean_of(&|c| c.readout_errors(), num_qubits),
            e2q: mean_of(&|c| c.two_qubit_errors(), num_links),
        })
    }

    fn get(&self, field: CalField, index: usize) -> f64 {
        match field {
            CalField::T1 => self.t1[index],
            CalField::T2 => self.t2[index],
            CalField::Err1q => self.e1q[index],
            CalField::ErrReadout => self.ero[index],
            CalField::Err2q => self.e2q[index],
        }
    }
}

/// The clamp-policy replacement value for a defective entry.
fn clamp_repair(field: CalField, kind: IssueKind, value: f64) -> f64 {
    match kind {
        IssueKind::NegativeErrorRate => 0.0,
        IssueKind::ErrorRateAtOrAboveOne => MAX_ERROR_RATE,
        IssueKind::CoherenceInversion { t1_us } => 2.0 * t1_us,
        IssueKind::NotANumber | IssueKind::NonPositiveCoherence => match field {
            CalField::T1 => FALLBACK_T1_US,
            CalField::T2 => FALLBACK_T2_US,
            // unknown error rate: assume the worst so routing avoids it
            CalField::Err1q | CalField::ErrReadout | CalField::Err2q => MAX_ERROR_RATE,
        },
        IssueKind::WrongLength { .. } => value,
    }
}

/// Classifies one entry; `None` when it is acceptable.
fn classify(field: CalField, value: f64, t1_for_qubit: Option<f64>) -> Option<IssueKind> {
    if value.is_nan() {
        return Some(IssueKind::NotANumber);
    }
    if field.is_coherence() {
        if value <= 0.0 || value.is_infinite() {
            return Some(IssueKind::NonPositiveCoherence);
        }
        if field == CalField::T2 {
            if let Some(t1) = t1_for_qubit {
                if t1 > 0.0 && value > 2.0 * t1 {
                    return Some(IssueKind::CoherenceInversion { t1_us: t1 });
                }
            }
        }
        None
    } else if value < 0.0 {
        Some(IssueKind::NegativeErrorRate)
    } else if value >= 1.0 {
        Some(IssueKind::ErrorRateAtOrAboveOne)
    } else {
        None
    }
}

impl RawCalibration {
    /// Validates against a device shape without repairing anything.
    ///
    /// The returned report lists every defect with `repair: None`.
    pub fn validate(&self, topology: &Topology) -> CalibrationReport {
        let (report, _) = self.examine(topology, SanitizePolicy::Reject, None);
        report
    }

    /// Validates and, policy permitting, repairs the snapshot into a
    /// guaranteed-valid [`Calibration`].
    ///
    /// `history` feeds [`SanitizePolicy::ImputeFromHistory`]; it is
    /// ignored by the other policies. A history of the wrong shape (or
    /// an empty one) is treated as absent.
    ///
    /// # Errors
    ///
    /// Returns [`CalibrationRejected`] when the policy is
    /// [`SanitizePolicy::Reject`] and any defect exists, or — under any
    /// policy — when a table length does not match the device shape
    /// (that defect has no meaningful repair).
    pub fn sanitize(
        &self,
        topology: &Topology,
        policy: SanitizePolicy,
        history: Option<&CalibrationLog>,
    ) -> Result<(Calibration, CalibrationReport), CalibrationRejected> {
        let history = match policy {
            SanitizePolicy::ImputeFromHistory => {
                history.and_then(|log| History::from_log(log, topology.num_qubits(), topology.num_links()))
            }
            _ => None,
        };
        let (report, repaired) = self.examine(topology, policy, history.as_ref());
        if report.has_shape_mismatch() || (policy == SanitizePolicy::Reject && !report.is_clean()) {
            return Err(CalibrationRejected { report });
        }
        let durations = self.durations.unwrap_or_default();
        match Calibration::new(
            topology,
            repaired.t1_us,
            repaired.t2_us,
            repaired.err_1q,
            repaired.err_readout,
            repaired.err_2q,
            durations,
        ) {
            Ok(cal) => Ok((cal, report)),
            // Repairs guarantee validity; reaching this arm would be a
            // bug in the repair table, reported as a rejection rather
            // than a panic.
            Err(_) => Err(CalibrationRejected { report }),
        }
    }

    /// Walks every table, recording issues and producing repaired
    /// copies (repairs are only recorded when the policy applies them).
    fn examine(
        &self,
        topology: &Topology,
        policy: SanitizePolicy,
        history: Option<&History>,
    ) -> (CalibrationReport, RawCalibration) {
        let n = topology.num_qubits();
        let m = topology.num_links();
        let mut issues = Vec::new();
        let mut repaired = self.clone();

        // shape first: defects below are only meaningful per-entry
        for (field, len, expected) in [
            (CalField::T1, self.t1_us.len(), n),
            (CalField::T2, self.t2_us.len(), n),
            (CalField::Err1q, self.err_1q.len(), n),
            (CalField::ErrReadout, self.err_readout.len(), n),
            (CalField::Err2q, self.err_2q.len(), m),
        ] {
            if len != expected {
                issues.push(CalibrationIssue {
                    field,
                    index: None,
                    value: 0.0,
                    kind: IssueKind::WrongLength {
                        expected,
                        actual: len,
                    },
                    repair: None,
                });
            }
        }
        if !issues.is_empty() {
            return (CalibrationReport { policy, issues }, repaired);
        }

        // repair T1 before T2 so the inversion check sees repaired T1
        let fields: [(CalField, &[f64]); 5] = [
            (CalField::T1, &self.t1_us),
            (CalField::T2, &self.t2_us),
            (CalField::Err1q, &self.err_1q),
            (CalField::ErrReadout, &self.err_readout),
            (CalField::Err2q, &self.err_2q),
        ];
        for (field, table) in fields {
            for (index, &value) in table.iter().enumerate() {
                let t1_ref = (field == CalField::T2).then(|| repaired.t1_us[index]);
                let Some(kind) = classify(field, value, t1_ref) else {
                    continue;
                };
                let repair = match policy {
                    SanitizePolicy::Reject => None,
                    SanitizePolicy::Clamp => Some(Repair::Clamped(clamp_repair(field, kind, value))),
                    SanitizePolicy::ImputeFromHistory => {
                        Some(impute_repair(field, kind, value, index, history))
                    }
                };
                if let Some(repair) = repair {
                    *repaired.table_mut(field, index) = repair.value();
                }
                issues.push(CalibrationIssue {
                    field,
                    index: Some(index),
                    value,
                    kind,
                    repair,
                });
            }
        }
        (CalibrationReport { policy, issues }, repaired)
    }

    fn table_mut(&mut self, field: CalField, index: usize) -> &mut f64 {
        match field {
            CalField::T1 => &mut self.t1_us[index],
            CalField::T2 => &mut self.t2_us[index],
            CalField::Err1q => &mut self.err_1q[index],
            CalField::ErrReadout => &mut self.err_readout[index],
            CalField::Err2q => &mut self.err_2q[index],
        }
    }
}

/// The impute-policy repair: historical mean when available and itself
/// valid for the field, otherwise the clamp repair.
fn impute_repair(
    field: CalField,
    kind: IssueKind,
    value: f64,
    index: usize,
    history: Option<&History>,
) -> Repair {
    if let Some(h) = history {
        let mean = h.get(field, index);
        let usable = if field.is_coherence() {
            mean > 0.0 && mean.is_finite()
        } else {
            (0.0..1.0).contains(&mean)
        };
        if usable {
            return Repair::Imputed(mean);
        }
    }
    Repair::Clamped(clamp_repair(field, kind, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calgen::{CalibrationGenerator, VariationProfile};

    fn topo() -> Topology {
        Topology::linear(4)
    }

    fn clean_raw(t: &Topology) -> RawCalibration {
        RawCalibration::from(&Calibration::uniform(t, 0.05, 0.004, 0.02))
    }

    #[test]
    fn clean_snapshot_passes_every_policy() {
        let t = topo();
        let raw = clean_raw(&t);
        for policy in [
            SanitizePolicy::Reject,
            SanitizePolicy::Clamp,
            SanitizePolicy::ImputeFromHistory,
        ] {
            let (cal, report) = raw.sanitize(&t, policy, None).unwrap();
            assert!(report.is_clean(), "{report}");
            assert_eq!(cal.two_qubit_error(0), 0.05);
        }
    }

    #[test]
    fn reject_refuses_nan() {
        let t = topo();
        let mut raw = clean_raw(&t);
        raw.err_2q[1] = f64::NAN;
        let err = raw.sanitize(&t, SanitizePolicy::Reject, None).unwrap_err();
        assert_eq!(err.report.issues().len(), 1);
        let issue = &err.report.issues()[0];
        assert_eq!(issue.field, CalField::Err2q);
        assert_eq!(issue.index, Some(1));
        assert_eq!(issue.kind, IssueKind::NotANumber);
        assert!(err.to_string().contains("err_2q[1]"), "{err}");
    }

    #[test]
    fn clamp_repairs_nan_pessimistically() {
        let t = topo();
        let mut raw = clean_raw(&t);
        raw.err_2q[1] = f64::NAN;
        let (cal, report) = raw.sanitize(&t, SanitizePolicy::Clamp, None).unwrap();
        assert_eq!(cal.two_qubit_error(1), MAX_ERROR_RATE);
        assert_eq!(report.repaired(), 1);
    }

    #[test]
    fn clamp_repairs_negative_and_super_unity() {
        let t = topo();
        let mut raw = clean_raw(&t);
        raw.err_1q[0] = -0.25;
        raw.err_readout[3] = 1.0;
        raw.err_2q[2] = f64::INFINITY;
        let (cal, report) = raw.sanitize(&t, SanitizePolicy::Clamp, None).unwrap();
        assert_eq!(cal.one_qubit_error(0), 0.0);
        assert_eq!(cal.readout_error(3), MAX_ERROR_RATE);
        assert_eq!(cal.two_qubit_error(2), MAX_ERROR_RATE);
        assert_eq!(report.issues().len(), 3);
        assert_eq!(report.repaired(), 3);
    }

    #[test]
    fn clamp_repairs_coherence() {
        let t = topo();
        let mut raw = clean_raw(&t);
        raw.t1_us[0] = -3.0; // falls back to FALLBACK_T1_US
        raw.t2_us[1] = 1000.0; // inversion: far above 2·T1 = 160
        let (cal, report) = raw.sanitize(&t, SanitizePolicy::Clamp, None).unwrap();
        assert_eq!(cal.t1_us(0), FALLBACK_T1_US);
        assert_eq!(cal.t2_us(1), 160.0);
        assert!(report
            .issues()
            .iter()
            .any(|i| matches!(i.kind, IssueKind::CoherenceInversion { .. })));
    }

    #[test]
    fn inversion_checked_against_repaired_t1() {
        let t = topo();
        let mut raw = clean_raw(&t);
        raw.t1_us[2] = f64::NAN; // repaired to FALLBACK_T1_US = 80
        raw.t2_us[2] = 170.0; // > 2·80, must still be flagged
        let (cal, _) = raw.sanitize(&t, SanitizePolicy::Clamp, None).unwrap();
        assert_eq!(cal.t2_us(2), 2.0 * FALLBACK_T1_US);
    }

    #[test]
    fn shape_mismatch_rejected_under_every_policy() {
        let t = topo();
        let mut raw = clean_raw(&t);
        raw.err_2q.pop();
        for policy in [
            SanitizePolicy::Reject,
            SanitizePolicy::Clamp,
            SanitizePolicy::ImputeFromHistory,
        ] {
            let err = raw.sanitize(&t, policy, None).unwrap_err();
            assert!(err.report.has_shape_mismatch());
            assert!(matches!(
                err.report.issues()[0].kind,
                IssueKind::WrongLength {
                    expected: 3,
                    actual: 2
                }
            ));
        }
    }

    #[test]
    fn impute_uses_history_mean() {
        let t = Topology::ibm_q20_tokyo();
        let mut gen = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 9);
        let mut log = CalibrationLog::new(&t);
        for day in gen.daily_series(&t, 12) {
            log.push(day).unwrap();
        }
        let mut raw = RawCalibration::from(log.get(0).unwrap());
        raw.err_2q[7] = f64::NAN;
        raw.t1_us[3] = -1.0;
        let (cal, report) = raw
            .sanitize(&t, SanitizePolicy::ImputeFromHistory, Some(&log))
            .unwrap();
        assert!((cal.two_qubit_error(7) - log.link_mean(7)).abs() < 1e-12);
        assert!(cal.t1_us(3) > 0.0);
        assert_eq!(report.repaired(), 2);
        assert!(report
            .issues()
            .iter()
            .all(|i| matches!(i.repair, Some(Repair::Imputed(_)))));
    }

    #[test]
    fn impute_without_history_falls_back_to_clamp() {
        let t = topo();
        let mut raw = clean_raw(&t);
        raw.err_2q[0] = 2.0;
        let (cal, report) = raw.sanitize(&t, SanitizePolicy::ImputeFromHistory, None).unwrap();
        assert_eq!(cal.two_qubit_error(0), MAX_ERROR_RATE);
        assert!(matches!(report.issues()[0].repair, Some(Repair::Clamped(_))));
    }

    #[test]
    fn impute_ignores_wrong_shape_history() {
        let t = topo();
        let other = Topology::linear(6);
        let mut log = CalibrationLog::new(&other);
        log.push(Calibration::uniform(&other, 0.01, 0.0, 0.0)).unwrap();
        let mut raw = clean_raw(&t);
        raw.err_2q[0] = f64::NAN;
        let (cal, _) = raw
            .sanitize(&t, SanitizePolicy::ImputeFromHistory, Some(&log))
            .unwrap();
        assert_eq!(cal.two_qubit_error(0), MAX_ERROR_RATE);
    }

    #[test]
    fn validate_reports_without_repairing() {
        let t = topo();
        let mut raw = clean_raw(&t);
        raw.err_2q[0] = -1.0;
        raw.t2_us[1] = f64::NAN;
        let report = raw.validate(&t);
        assert_eq!(report.issues().len(), 2);
        assert!(report.issues().iter().all(|i| i.repair.is_none()));
        assert_eq!(report.repaired(), 0);
        assert!(!report.is_clean());
    }

    #[test]
    fn report_diagnostics_are_line_per_issue() {
        let t = topo();
        let mut raw = clean_raw(&t);
        raw.err_2q[0] = -1.0;
        let (_, report) = raw.sanitize(&t, SanitizePolicy::Clamp, None).unwrap();
        let diags = report.diagnostics();
        assert_eq!(diags.len(), 1);
        assert!(diags[0].starts_with("calibration: err_2q[0]"), "{}", diags[0]);
    }

    #[test]
    fn sanitized_output_always_revalidates() {
        // fuzz-ish sweep: every kind of corruption, clamp policy, and
        // the result must round-trip through Calibration::new
        let t = topo();
        let corruptions: &[f64] = &[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 1.0, 2.5, 0.999];
        for (fi, field) in [
            CalField::T1,
            CalField::T2,
            CalField::Err1q,
            CalField::ErrReadout,
            CalField::Err2q,
        ]
        .into_iter()
        .enumerate()
        {
            for (ci, &bad) in corruptions.iter().enumerate() {
                let mut raw = clean_raw(&t);
                let index = (fi + ci) % 3;
                *raw.table_mut(field, index) = bad;
                let (cal, _) = raw.sanitize(&t, SanitizePolicy::Clamp, None).unwrap();
                let round = Calibration::new(
                    &t,
                    cal.t1_table().to_vec(),
                    cal.t2_table().to_vec(),
                    cal.one_qubit_errors().to_vec(),
                    cal.readout_errors().to_vec(),
                    cal.two_qubit_errors().to_vec(),
                    cal.durations(),
                );
                assert!(round.is_ok(), "{field} = {bad} produced invalid repair");
            }
        }
    }
}
