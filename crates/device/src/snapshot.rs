//! Reading and writing calibration snapshots as JSON, without trusting
//! the contents.
//!
//! The writer ([`to_json`]) emits the stable snapshot layout used by
//! `quva characterize --export`. The reader ([`parse_raw`]) produces a
//! [`RawCalibration`] on purpose: real calibration feeds contain NaNs,
//! `Infinity`, negative rates, and missing entries, so the parser
//! accepts any numeric token (including the non-standard `NaN` /
//! `Infinity` spellings and `null`, all read as NaN) and leaves policy
//! decisions to [`RawCalibration::sanitize`].

use std::error::Error;
use std::fmt;

use crate::calibration::{Calibration, GateDurations};
use crate::validate::RawCalibration;

/// A snapshot file could not be understood structurally (tokens, types,
/// or missing fields). Defective *values* are not parse errors — they
/// flow through to sanitization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    message: String,
}

impl SnapshotError {
    fn new(message: impl Into<String>) -> Self {
        SnapshotError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "calibration snapshot: {}", self.message)
    }
}

impl Error for SnapshotError {}

/// Serializes a calibration into the snapshot JSON layout.
pub fn to_json(cal: &Calibration) -> String {
    let mut out = String::from("{\n");
    for (name, table) in [
        ("t1_us", cal.t1_table()),
        ("t2_us", cal.t2_table()),
        ("err_1q", cal.one_qubit_errors()),
        ("err_readout", cal.readout_errors()),
        ("err_2q", cal.two_qubit_errors()),
    ] {
        out.push_str(&format!("  \"{name}\": ["));
        for (i, v) in table.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&fmt_f64(*v));
        }
        out.push_str("],\n");
    }
    let d = cal.durations();
    out.push_str(&format!(
        "  \"durations\": {{ \"one_qubit_ns\": {}, \"two_qubit_ns\": {}, \"readout_ns\": {} }}\n}}\n",
        fmt_f64(d.one_qubit_ns),
        fmt_f64(d.two_qubit_ns),
        fmt_f64(d.readout_ns)
    ));
    out
}

/// Formats an `f64` so it round-trips exactly and integers keep a
/// decimal point (`80` → `80.0`), with non-finite values using the
/// spellings the parser accepts.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "Infinity".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Infinity".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Parses a snapshot into an unvalidated [`RawCalibration`].
///
/// # Errors
///
/// Returns [`SnapshotError`] on malformed JSON, wrong value types, or a
/// missing table. Out-of-range and non-finite *numbers* parse fine.
pub fn parse_raw(text: &str) -> Result<RawCalibration, SnapshotError> {
    let value = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    }
    .parse_document()?;
    let JsonValue::Object(fields) = value else {
        return Err(SnapshotError::new("top level must be an object"));
    };
    let lookup = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let table = |name: &str| -> Result<Vec<f64>, SnapshotError> {
        match lookup(name) {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(|v| match v {
                    JsonValue::Number(n) => Ok(*n),
                    JsonValue::Null => Ok(f64::NAN),
                    other => Err(SnapshotError::new(format!(
                        "'{name}' entries must be numbers, found {}",
                        other.kind()
                    ))),
                })
                .collect(),
            Some(other) => Err(SnapshotError::new(format!(
                "'{name}' must be an array, found {}",
                other.kind()
            ))),
            None => Err(SnapshotError::new(format!("missing field '{name}'"))),
        }
    };
    let durations = match lookup("durations") {
        Some(JsonValue::Object(d)) => {
            let num = |name: &str| -> Result<f64, SnapshotError> {
                match d.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
                    Some(JsonValue::Number(n)) => Ok(*n),
                    Some(other) => Err(SnapshotError::new(format!(
                        "durations.{name} must be a number, found {}",
                        other.kind()
                    ))),
                    None => Err(SnapshotError::new(format!("durations is missing '{name}'"))),
                }
            };
            Some(GateDurations {
                one_qubit_ns: num("one_qubit_ns")?,
                two_qubit_ns: num("two_qubit_ns")?,
                readout_ns: num("readout_ns")?,
            })
        }
        Some(other) => {
            return Err(SnapshotError::new(format!(
                "'durations' must be an object, found {}",
                other.kind()
            )))
        }
        None => None,
    };
    Ok(RawCalibration {
        t1_us: table("t1_us")?,
        t2_us: table("t2_us")?,
        err_1q: table("err_1q")?,
        err_readout: table("err_readout")?,
        err_2q: table("err_2q")?,
        durations,
    })
}

/// A parsed JSON value (internal: just enough for snapshots).
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "a boolean",
            JsonValue::Number(_) => "a number",
            JsonValue::String(_) => "a string",
            JsonValue::Array(_) => "an array",
            JsonValue::Object(_) => "an object",
        }
    }
}

/// Maximum container nesting the snapshot parser accepts. Snapshot
/// files are untrusted input; a `[[[[…` bomb must surface as a
/// [`SnapshotError`] instead of overflowing the stack (an abort).
const MAX_SNAPSHOT_DEPTH: usize = 64;

/// Recursive-descent JSON parser, extended with `NaN`, `Infinity`, and
/// `-Infinity` literals.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse_document(mut self) -> Result<JsonValue, SnapshotError> {
        let value = self.parse_value(0)?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after the document"));
        }
        Ok(value)
    }

    fn err(&self, message: impl fmt::Display) -> SnapshotError {
        SnapshotError::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), SnapshotError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, SnapshotError> {
        if depth > MAX_SNAPSHOT_DEPTH {
            return Err(self.err(format!("nesting depth exceeds {MAX_SNAPSHOT_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(JsonValue::Null),
            Some(b'N') if self.eat_keyword("NaN") => Ok(JsonValue::Number(f64::NAN)),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(JsonValue::Number(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(JsonValue::Number(f64::NEG_INFINITY))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, SnapshotError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, SnapshotError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, SnapshotError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(self.err(format!("unknown escape '\\{}'", other as char))),
                    }
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // multi-byte UTF-8: copy the whole code point
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, SnapshotError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| SnapshotError::new(format!("'{text}' is not a number (at byte {start})")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use crate::validate::SanitizePolicy;

    #[test]
    fn roundtrip_preserves_every_table() {
        let t = Topology::ibm_q20_tokyo();
        let cal = Calibration::uniform(&t, 0.031_25, 0.0042, 0.0211);
        let raw = parse_raw(&to_json(&cal)).unwrap();
        assert_eq!(raw.t1_us, cal.t1_table());
        assert_eq!(raw.err_2q, cal.two_qubit_errors());
        assert_eq!(raw.durations, Some(cal.durations()));
        let (back, report) = raw.sanitize(&t, SanitizePolicy::Reject, None).unwrap();
        assert!(report.is_clean());
        assert_eq!(&back, &cal);
    }

    #[test]
    fn parser_accepts_nan_and_infinity_tokens() {
        let raw = parse_raw(
            r#"{"t1_us": [NaN, Infinity], "t2_us": [-Infinity, null],
                "err_1q": [0.1, 2e-3], "err_readout": [0.0, 0.5], "err_2q": [1.5]}"#,
        )
        .unwrap();
        assert!(raw.t1_us[0].is_nan());
        assert_eq!(raw.t1_us[1], f64::INFINITY);
        assert_eq!(raw.t2_us[0], f64::NEG_INFINITY);
        assert!(raw.t2_us[1].is_nan());
        assert_eq!(raw.err_1q[1], 0.002);
        assert_eq!(raw.err_2q[0], 1.5);
        assert_eq!(raw.durations, None);
    }

    #[test]
    fn missing_table_is_a_parse_error() {
        let err = parse_raw(r#"{"t1_us": [1.0]}"#).unwrap_err();
        assert!(err.to_string().contains("missing field 't2_us'"), "{err}");
    }

    #[test]
    fn wrong_types_are_parse_errors() {
        let err = parse_raw(r#"{"t1_us": "not a list"}"#).unwrap_err();
        assert!(err.to_string().contains("must be an array"), "{err}");
        let err = parse_raw(r#"{"t1_us": [true]}"#).unwrap_err();
        assert!(err.to_string().contains("must be numbers"), "{err}");
    }

    #[test]
    fn malformed_json_is_reported_with_position() {
        for text in ["", "{", "[1, ", "{\"a\" 1}", "{\"a\": 1} trailing", "nul"] {
            let err = parse_raw(text).unwrap_err();
            assert!(err.to_string().contains("at byte"), "{text:?} -> {err}");
        }
    }

    #[test]
    fn serializer_spells_out_non_finite_values() {
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "Infinity");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Infinity");
        assert_eq!(fmt_f64(80.0), "80.0");
        assert_eq!(fmt_f64(0.0042), "0.0042");
    }

    #[test]
    fn every_byte_truncation_is_a_typed_error() {
        // A partially-written snapshot (crash mid-flush, torn download)
        // must never panic — every prefix parses to Err or, for the
        // rare prefix that is itself complete JSON, to a missing-field
        // error caught by the structural checks.
        let t = Topology::ibm_q5_tenerife();
        let full = to_json(&Calibration::uniform(&t, 0.031_25, 0.0042, 0.0211));
        assert!(parse_raw(&full).is_ok());
        // Trailing whitespace aside, every strict prefix leaves the
        // top-level object unclosed and must fail.
        let doc = full.trim_end();
        for cut in 0..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            assert!(parse_raw(&doc[..cut]).is_err(), "prefix of {cut} bytes parsed");
        }
    }

    #[test]
    fn garbage_bytes_are_typed_errors() {
        for garbage in [
            "\u{0}\u{1}\u{2}",
            "PK\u{3}\u{4}not-json-at-all",
            "{\"t1_us\": [1.0,,]}",
            "[[[[",
            "{\"a\": {\"b\": ",
            "\"\\u12\"",
            "{\"t1_us\"; [1.0]}",
        ] {
            assert!(parse_raw(garbage).is_err(), "garbage {garbage:?} parsed");
        }
    }

    #[test]
    fn nesting_bomb_is_an_error_not_a_stack_overflow() {
        for open in ["[", "{\"k\":"] {
            let bomb = open.repeat(100_000);
            let err = parse_raw(&bomb).unwrap_err();
            assert!(err.to_string().contains("nesting depth"), "{err}");
        }
        // Depth at the limit still parses structurally (then fails the
        // snapshot field checks, which is the expected typed error).
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_SNAPSHOT_DEPTH),
            "]".repeat(MAX_SNAPSHOT_DEPTH)
        );
        let err = Parser {
            bytes: deep.as_bytes(),
            pos: 0,
        }
        .parse_document();
        assert!(err.is_ok());
    }

    #[test]
    fn strings_with_escapes_parse() {
        let v = Parser {
            bytes: br#""a\n\"bA""#,
            pos: 0,
        }
        .parse_document()
        .unwrap();
        assert_eq!(v, JsonValue::String("a\n\"b\u{41}".to_string()));
    }
}
