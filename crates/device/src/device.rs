//! A [`Device`]: a coupling topology paired with one calibration
//! snapshot. This is the object every policy and simulator consumes.

use std::fmt;

use quva_circuit::PhysQubit;

use crate::calibration::{Calibration, CalibrationError};
use crate::topology::Topology;

/// A NISQ machine at a point in time: its coupling graph plus the error
/// rates measured at the most recent calibration cycle.
///
/// A link can be *disabled* ([`Device::disable_link`]) to model a dead
/// coupler — a link the calibration feed stopped reporting or that
/// operations declared unusable. Every link-level query
/// ([`Device::link_error`], [`Device::swap_failure_weight`], ...)
/// treats a disabled link exactly like an absent one, so policies built
/// on those queries route around dead links automatically.
///
/// # Examples
///
/// ```
/// use quva_device::{Calibration, Device, Topology};
/// use quva_circuit::PhysQubit;
///
/// let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.1, 0.001, 0.02));
/// assert_eq!(dev.num_qubits(), 3);
/// assert_eq!(dev.link_error(PhysQubit(0), PhysQubit(1)), Some(0.1));
/// assert_eq!(dev.link_error(PhysQubit(0), PhysQubit(2)), None);
/// let swap = dev.swap_success(PhysQubit(0), PhysQubit(1)).unwrap();
/// assert!((swap - 0.9f64.powi(3)).abs() < 1e-12);
///
/// let dead = dev.with_disabled_links([(PhysQubit(0), PhysQubit(1))]);
/// assert_eq!(dead.link_error(PhysQubit(0), PhysQubit(1)), None);
/// assert!(!dead.has_active_link(PhysQubit(0), PhysQubit(1)));
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    topology: Topology,
    calibration: Calibration,
    /// `disabled[id]` marks links the policies must not use.
    disabled: Vec<bool>,
}

impl Device {
    /// Builds a device, deriving the calibration from the topology via a
    /// closure — convenient because most constructors need the topology
    /// twice.
    pub fn new(topology: Topology, calibration: impl FnOnce(&Topology) -> Calibration) -> Self {
        let calibration = calibration(&topology);
        let disabled = vec![false; topology.num_links()];
        Device {
            topology,
            calibration,
            disabled,
        }
    }

    /// Builds a device from independently constructed parts.
    ///
    /// # Errors
    ///
    /// Returns a [`CalibrationError`] if the calibration tables do not
    /// match the topology shape.
    pub fn from_parts(topology: Topology, calibration: Calibration) -> Result<Self, CalibrationError> {
        // Re-validate through the constructor to catch shape mismatches.
        let revalidated = Calibration::new(
            &topology,
            calibration.t1_table().to_vec(),
            calibration.t2_table().to_vec(),
            calibration.one_qubit_errors().to_vec(),
            calibration.readout_errors().to_vec(),
            calibration.two_qubit_errors().to_vec(),
            calibration.durations(),
        )?;
        let disabled = vec![false; topology.num_links()];
        Ok(Device {
            topology,
            calibration: revalidated,
            disabled,
        })
    }

    /// The IBM-Q20 Tokyo machine with the paper's deterministic average
    /// error map (the primary evaluation configuration).
    pub fn ibm_q20() -> Self {
        let topology = Topology::ibm_q20_tokyo();
        let calibration = crate::calgen::ibm_q20_average_calibration(&topology);
        let disabled = vec![false; topology.num_links()];
        Device {
            topology,
            calibration,
            disabled,
        }
    }

    /// The IBM-Q5 Tenerife machine with the §7 average error map.
    pub fn ibm_q5() -> Self {
        let topology = Topology::ibm_q5_tenerife();
        let calibration = crate::calgen::ibm_q5_average_calibration(&topology);
        let disabled = vec![false; topology.num_links()];
        Device {
            topology,
            calibration,
            disabled,
        }
    }

    /// Marks the link between `a` and `b` as dead. Returns `false`
    /// (and changes nothing) when the pair is not coupled; disabling an
    /// already-dead link is a no-op returning `true`.
    pub fn disable_link(&mut self, a: PhysQubit, b: PhysQubit) -> bool {
        match self.topology.link_id(a, b) {
            Some(id) => {
                self.disabled[id] = true;
                true
            }
            None => false,
        }
    }

    /// Builder form of [`Device::disable_link`]: pairs that are not
    /// coupled are silently ignored.
    #[must_use]
    pub fn with_disabled_links(mut self, pairs: impl IntoIterator<Item = (PhysQubit, PhysQubit)>) -> Self {
        for (a, b) in pairs {
            self.disable_link(a, b);
        }
        self
    }

    /// Whether the coupled pair `a`–`b` has been disabled. `false` for
    /// pairs that were never coupled.
    pub fn is_link_disabled(&self, a: PhysQubit, b: PhysQubit) -> bool {
        self.topology.link_id(a, b).is_some_and(|id| self.disabled[id])
    }

    /// Whether the link with this id is usable (not disabled).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid link id.
    pub fn link_enabled(&self, id: usize) -> bool {
        !self.disabled[id]
    }

    /// Number of disabled links.
    pub fn disabled_link_count(&self) -> usize {
        self.disabled.iter().filter(|&&d| d).count()
    }

    /// Whether `a` and `b` are coupled by a *usable* link.
    pub fn has_active_link(&self, a: PhysQubit, b: PhysQubit) -> bool {
        self.topology.link_id(a, b).is_some_and(|id| !self.disabled[id])
    }

    /// The neighbors of `q` over usable links only, ascending.
    pub fn active_neighbors(&self, q: PhysQubit) -> Vec<PhysQubit> {
        self.topology
            .neighbors(q)
            .into_iter()
            .filter(|&nb| self.has_active_link(q, nb))
            .collect()
    }

    /// The coupling topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The calibration snapshot.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits()
    }

    /// Replaces the calibration (e.g. the next day's snapshot),
    /// validating it against the topology. Disabled links stay disabled.
    ///
    /// # Errors
    ///
    /// Returns a [`CalibrationError`] on shape mismatch.
    pub fn with_calibration(&self, calibration: Calibration) -> Result<Self, CalibrationError> {
        let mut next = Device::from_parts(self.topology.clone(), calibration)?;
        next.disabled = self.disabled.clone();
        Ok(next)
    }

    /// A 64-bit structural fingerprint of this device: topology shape,
    /// every calibration table (exact bit patterns), gate durations,
    /// and the disabled-link mask.
    ///
    /// Two devices with equal fingerprints evaluate any circuit
    /// identically, which is what makes the fingerprint a sound cache
    /// key for memoizing per-device work (e.g. repeated PST
    /// evaluations of the same benchmark in the experiment harness).
    /// Not a cryptographic hash — collisions are astronomically
    /// unlikely in practice but not impossible.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.topology.num_qubits().hash(&mut h);
        for link in self.topology.links() {
            link.low().index().hash(&mut h);
            link.high().index().hash(&mut h);
        }
        let cal = &self.calibration;
        for table in [
            cal.t1_table(),
            cal.t2_table(),
            cal.one_qubit_errors(),
            cal.readout_errors(),
            cal.two_qubit_errors(),
        ] {
            table.len().hash(&mut h);
            for &v in table {
                v.to_bits().hash(&mut h);
            }
        }
        let dur = cal.durations();
        dur.one_qubit_ns.to_bits().hash(&mut h);
        dur.two_qubit_ns.to_bits().hash(&mut h);
        dur.readout_ns.to_bits().hash(&mut h);
        self.disabled.hash(&mut h);
        h.finish()
    }

    /// CNOT error rate across a link, `None` when the qubits are not
    /// coupled or the link is disabled.
    pub fn link_error(&self, a: PhysQubit, b: PhysQubit) -> Option<f64> {
        self.topology
            .link_id(a, b)
            .filter(|&id| !self.disabled[id])
            .map(|id| self.calibration.two_qubit_error(id))
    }

    /// CNOT success probability across a link, `None` when uncoupled.
    pub fn cnot_success(&self, a: PhysQubit, b: PhysQubit) -> Option<f64> {
        self.link_error(a, b).map(|e| 1.0 - e)
    }

    /// SWAP success probability across a link: a SWAP is 3 CNOTs, so
    /// `(1 − e)³` (paper §2.1 / Fig. 2d).
    pub fn swap_success(&self, a: PhysQubit, b: PhysQubit) -> Option<f64> {
        self.cnot_success(a, b).map(|s| s.powi(3))
    }

    /// The failure weight `−ln(p)` of one CNOT on a link, the additive
    /// cost VQM minimizes. `None` when uncoupled.
    pub fn cnot_failure_weight(&self, a: PhysQubit, b: PhysQubit) -> Option<f64> {
        self.cnot_success(a, b).map(|s| -s.max(f64::MIN_POSITIVE).ln())
    }

    /// The failure weight `−ln(p³)` of one SWAP on a link.
    pub fn swap_failure_weight(&self, a: PhysQubit, b: PhysQubit) -> Option<f64> {
        self.swap_success(a, b).map(|s| -s.max(f64::MIN_POSITIVE).ln())
    }

    /// The sub-device induced by a region of physical qubits: the
    /// region's qubits renumbered `0..region.len()` (in the order
    /// given), keeping only internal *usable* links (disabled links are
    /// dropped from the sub-topology) and the matching calibration
    /// rows. Returns the device plus the new-index → original-qubit
    /// table.
    ///
    /// Used by the §8 partitioning study to compile a program copy onto
    /// one half of a machine.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty, repeats a qubit, or references a
    /// qubit outside the device.
    pub fn induced(&self, region: &[PhysQubit]) -> (Device, Vec<PhysQubit>) {
        assert!(!region.is_empty(), "induced region is empty");
        let n = self.num_qubits();
        let mut new_of_old = vec![usize::MAX; n];
        for (new, &q) in region.iter().enumerate() {
            assert!(q.index() < n, "{q} outside the device");
            assert!(new_of_old[q.index()] == usize::MAX, "{q} repeated in region");
            new_of_old[q.index()] = new;
        }
        let links: Vec<(u32, u32)> = self
            .topology
            .links()
            .iter()
            .enumerate()
            .filter(|&(id, _)| !self.disabled[id])
            .map(|(_, l)| l)
            .filter(|l| {
                new_of_old[l.low().index()] != usize::MAX && new_of_old[l.high().index()] != usize::MAX
            })
            .map(|l| {
                (
                    new_of_old[l.low().index()] as u32,
                    new_of_old[l.high().index()] as u32,
                )
            })
            .collect();
        let topology = Topology::from_links(
            format!("{}[{}q-region]", self.topology.name(), region.len()),
            region.len(),
            links,
        );
        let cal = &self.calibration;
        let pick = |f: &dyn Fn(usize) -> f64| -> Vec<f64> { region.iter().map(|q| f(q.index())).collect() };
        let err_2q: Vec<f64> = topology
            .links()
            .iter()
            .map(|l| {
                let (a, b) = (region[l.low().index()], region[l.high().index()]);
                self.link_error(a, b)
                    .unwrap_or_else(|| unreachable!("induced link exists in parent"))
            })
            .collect();
        let calibration = Calibration::new(
            &topology,
            pick(&|i| cal.t1_us(i)),
            pick(&|i| cal.t2_us(i)),
            pick(&|i| cal.one_qubit_error(i)),
            pick(&|i| cal.readout_error(i)),
            err_2q,
            cal.durations(),
        )
        .unwrap_or_else(|e| unreachable!("subset of a valid calibration stays valid: {e}"));
        let disabled = vec![false; topology.num_links()];
        (
            Device {
                topology,
                calibration,
                disabled,
            },
            region.to_vec(),
        )
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [mean 2Q err {:.2}%, spread {:.1}x",
            self.topology,
            100.0 * self.calibration.mean_two_qubit_error(),
            self.calibration.variation_ratio()
        )?;
        if self.disabled_link_count() > 0 {
            write!(f, ", {} dead link(s)", self.disabled_link_count())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parts_validates_shape() {
        let topo3 = Topology::linear(3);
        let topo4 = Topology::linear(4);
        let cal3 = Calibration::uniform(&topo3, 0.1, 0.0, 0.0);
        assert!(Device::from_parts(topo4, cal3).is_err());
    }

    #[test]
    fn ibm_presets_build() {
        let q20 = Device::ibm_q20();
        assert_eq!(q20.num_qubits(), 20);
        assert!((q20.calibration().variation_ratio() - 7.5).abs() < 1e-9);
        let q5 = Device::ibm_q5();
        assert_eq!(q5.num_qubits(), 5);
    }

    #[test]
    fn swap_success_is_cube_of_cnot() {
        let dev = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
        let c = dev.cnot_success(PhysQubit(0), PhysQubit(1)).unwrap();
        let s = dev.swap_success(PhysQubit(0), PhysQubit(1)).unwrap();
        assert!((s - c.powi(3)).abs() < 1e-15);
    }

    #[test]
    fn failure_weights_are_nonnegative_and_monotone() {
        let dev = Device::new(Topology::linear(3), |t| {
            let mut c = Calibration::uniform(t, 0.05, 0.0, 0.0);
            c.set_two_qubit_error(1, 0.2);
            c
        });
        let w_good = dev.cnot_failure_weight(PhysQubit(0), PhysQubit(1)).unwrap();
        let w_bad = dev.cnot_failure_weight(PhysQubit(1), PhysQubit(2)).unwrap();
        assert!(w_good >= 0.0);
        assert!(w_bad > w_good, "weaker link must have larger failure weight");
        let sw = dev.swap_failure_weight(PhysQubit(0), PhysQubit(1)).unwrap();
        assert!((sw - 3.0 * w_good).abs() < 1e-12);
    }

    #[test]
    fn uncoupled_pair_returns_none() {
        let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
        assert_eq!(dev.cnot_success(PhysQubit(0), PhysQubit(2)), None);
        assert_eq!(dev.swap_failure_weight(PhysQubit(0), PhysQubit(2)), None);
    }

    #[test]
    fn with_calibration_swaps_snapshot() {
        let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
        let next = Calibration::uniform(dev.topology(), 0.05, 0.0, 0.0);
        let dev2 = dev.with_calibration(next).unwrap();
        assert_eq!(dev2.link_error(PhysQubit(0), PhysQubit(1)), Some(0.05));
        // original untouched
        assert_eq!(dev.link_error(PhysQubit(0), PhysQubit(1)), Some(0.1));
    }

    #[test]
    fn display_mentions_spread() {
        let dev = Device::ibm_q20();
        let s = dev.to_string();
        assert!(s.contains("7.5x"), "{s}");
    }

    #[test]
    fn induced_subdevice_preserves_errors() {
        let dev = Device::ibm_q20();
        let region = [PhysQubit(5), PhysQubit(6), PhysQubit(7)];
        let (sub, back) = dev.induced(&region);
        assert_eq!(sub.num_qubits(), 3);
        assert_eq!(back, region);
        // link 5-6 maps to new link 0-1 with the same error
        assert_eq!(
            sub.link_error(PhysQubit(0), PhysQubit(1)),
            dev.link_error(PhysQubit(5), PhysQubit(6))
        );
        // per-qubit quantities follow the region ordering
        assert_eq!(sub.calibration().t1_us(2), dev.calibration().t1_us(7));
    }

    #[test]
    fn induced_drops_external_links() {
        let dev = Device::new(Topology::linear(4), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
        let (sub, _) = dev.induced(&[PhysQubit(0), PhysQubit(2)]);
        assert_eq!(sub.topology().num_links(), 0);
    }

    #[test]
    fn disabled_link_behaves_as_absent() {
        let mut dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
        assert!(dev.disable_link(PhysQubit(0), PhysQubit(1)));
        assert!(
            !dev.disable_link(PhysQubit(0), PhysQubit(2)),
            "uncoupled pair cannot be disabled"
        );
        assert_eq!(dev.disabled_link_count(), 1);
        assert!(dev.is_link_disabled(PhysQubit(0), PhysQubit(1)));
        assert_eq!(dev.link_error(PhysQubit(0), PhysQubit(1)), None);
        assert_eq!(dev.cnot_success(PhysQubit(0), PhysQubit(1)), None);
        assert_eq!(dev.swap_failure_weight(PhysQubit(0), PhysQubit(1)), None);
        assert!(!dev.has_active_link(PhysQubit(0), PhysQubit(1)));
        assert_eq!(dev.active_neighbors(PhysQubit(1)), vec![PhysQubit(2)]);
        // the live link is untouched
        assert_eq!(dev.link_error(PhysQubit(1), PhysQubit(2)), Some(0.1));
        // the topology itself still records the physical coupler
        assert!(dev.topology().has_link(PhysQubit(0), PhysQubit(1)));
    }

    #[test]
    fn disabled_links_survive_recalibration() {
        let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.1, 0.0, 0.0))
            .with_disabled_links([(PhysQubit(1), PhysQubit(2))]);
        let next = Calibration::uniform(dev.topology(), 0.05, 0.0, 0.0);
        let dev2 = dev.with_calibration(next).unwrap();
        assert!(dev2.is_link_disabled(PhysQubit(1), PhysQubit(2)));
        assert_eq!(dev2.link_error(PhysQubit(0), PhysQubit(1)), Some(0.05));
    }

    #[test]
    fn induced_drops_disabled_links() {
        let dev = Device::new(Topology::linear(4), |t| Calibration::uniform(t, 0.1, 0.0, 0.0))
            .with_disabled_links([(PhysQubit(1), PhysQubit(2))]);
        let (sub, _) = dev.induced(&[PhysQubit(1), PhysQubit(2), PhysQubit(3)]);
        assert!(
            !sub.topology().has_link(PhysQubit(0), PhysQubit(1)),
            "dead link carried into sub-device"
        );
        assert!(sub.topology().has_link(PhysQubit(1), PhysQubit(2)));
    }

    #[test]
    fn display_counts_dead_links() {
        let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.1, 0.0, 0.0))
            .with_disabled_links([(PhysQubit(0), PhysQubit(1))]);
        assert!(dev.to_string().contains("1 dead link"), "{dev}");
    }

    #[test]
    fn fingerprint_tracks_everything_that_affects_evaluation() {
        let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
        let same = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
        assert_eq!(dev.fingerprint(), same.fingerprint());

        // a calibration change must change the key
        let recal = dev
            .with_calibration(dev.calibration().with_errors_scaled(0.5))
            .unwrap();
        assert_ne!(dev.fingerprint(), recal.fingerprint());

        // a dead link must change the key (same calibration tables)
        let dead = dev.clone().with_disabled_links([(PhysQubit(0), PhysQubit(1))]);
        assert_ne!(dev.fingerprint(), dead.fingerprint());

        // a different topology must change the key
        let ring = Device::new(Topology::ring(3), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
        assert_ne!(dev.fingerprint(), ring.fingerprint());
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn induced_rejects_duplicates() {
        let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
        dev.induced(&[PhysQubit(0), PhysQubit(0)]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn induced_rejects_out_of_range() {
        let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
        dev.induced(&[PhysQubit(7)]);
    }
}
