//! Standard device layouts used in the paper's evaluation.
//!
//! * [`Topology::ibm_q20_tokyo`] — the 20-qubit machine analyzed in §3,
//!   4 rows × 5 columns with diagonal couplings, 38 undirected links
//!   (characterized in both directions = the paper's "76 links");
//! * [`Topology::ibm_q5_tenerife`] — the 5-qubit "bowtie" used for the
//!   real-system evaluation in §7;
//! * generic `linear`, `ring`, `grid`, and `fully_connected` layouts for
//!   experiments and tests.

use crate::topology::Topology;

impl Topology {
    /// A 1-D chain of `n` qubits: `0–1–2–…–(n−1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use quva_device::Topology;
    ///
    /// let t = Topology::linear(5);
    /// assert_eq!(t.num_links(), 4);
    /// ```
    pub fn linear(n: usize) -> Self {
        let links = (0..n.saturating_sub(1)).map(|i| (i as u32, i as u32 + 1));
        Topology::from_links(format!("linear-{n}"), n, links)
    }

    /// A ring of `n` qubits (linear chain plus the closing link).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (smaller rings degenerate to duplicate links).
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 qubits");
        let links = (0..n).map(|i| (i as u32, ((i + 1) % n) as u32));
        Topology::from_links(format!("ring-{n}"), n, links)
    }

    /// A rectilinear `rows × cols` mesh, qubit `r*cols + c` at row `r`,
    /// column `c`.
    ///
    /// # Examples
    ///
    /// ```
    /// use quva_device::Topology;
    ///
    /// let t = Topology::grid(2, 3);
    /// assert_eq!(t.num_qubits(), 6);
    /// assert_eq!(t.num_links(), 7); // 4 horizontal + 3 vertical
    /// ```
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut links = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = (r * cols + c) as u32;
                if c + 1 < cols {
                    links.push((q, q + 1));
                }
                if r + 1 < rows {
                    links.push((q, q + cols as u32));
                }
            }
        }
        Topology::from_links(format!("grid-{rows}x{cols}"), rows * cols, links)
    }

    /// All-to-all coupling over `n` qubits (the idealized machine of
    /// §2.4, used as a contrast case in tests).
    pub fn fully_connected(n: usize) -> Self {
        let mut links = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                links.push((i as u32, j as u32));
            }
        }
        Topology::from_links(format!("full-{n}"), n, links)
    }

    /// The IBM-Q20 "Tokyo" layout the paper characterizes (§3, Fig. 9):
    /// a 4×5 mesh with seven diagonal couplings, for 38 undirected links.
    ///
    /// The rectilinear part is the exact 4×5 mesh; the diagonal set
    /// reproduces the published link *count* (the paper reports error
    /// data for 76 directed links = 38 undirected) and the mesh-with-
    /// diagonals structure shown in Fig. 9.
    ///
    /// # Examples
    ///
    /// ```
    /// use quva_device::Topology;
    ///
    /// let t = Topology::ibm_q20_tokyo();
    /// assert_eq!(t.num_qubits(), 20);
    /// assert_eq!(t.num_links(), 38);
    /// assert!(t.is_connected());
    /// ```
    pub fn ibm_q20_tokyo() -> Self {
        // Qubit r*5+c sits at row r (0..4), column c (0..5).
        let mut links = Vec::new();
        for r in 0..4u32 {
            for c in 0..5u32 {
                let q = r * 5 + c;
                if c + 1 < 5 {
                    links.push((q, q + 1));
                }
                if r + 1 < 4 {
                    links.push((q, q + 5));
                }
            }
        }
        // Seven diagonal couplings (crossed cells of Fig. 9).
        links.extend_from_slice(&[
            (1, 7),   // row0/col1 ↘ row1/col2
            (2, 6),   // row0/col2 ↙ row1/col1
            (3, 9),   // row0/col3 ↘ row1/col4
            (4, 8),   // row0/col4 ↙ row1/col3
            (5, 11),  // row1/col0 ↘ row2/col1
            (11, 17), // row2/col1 ↘ row3/col2
            (14, 18), // row2/col4 ↙ row3/col3 — the weakest link of Fig. 9
        ]);
        Topology::from_links("ibm-q20-tokyo", 20, links)
    }

    /// The IBM-Q5 "Tenerife" bowtie used for the paper's real-system
    /// evaluation (§7): `1–0, 2–0, 2–1, 3–2, 3–4, 4–2`.
    ///
    /// # Examples
    ///
    /// ```
    /// use quva_device::Topology;
    ///
    /// let t = Topology::ibm_q5_tenerife();
    /// assert_eq!(t.num_qubits(), 5);
    /// assert_eq!(t.num_links(), 6);
    /// ```
    pub fn ibm_q5_tenerife() -> Self {
        Topology::from_links(
            "ibm-q5-tenerife",
            5,
            [(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (4, 2)],
        )
    }

    /// The IBM-Q16 "Melbourne" ladder (the 14 usable qubits of the
    /// 16-qubit device, published coupling map) — a contemporary of the
    /// paper's machines, included for cross-topology experiments.
    ///
    /// # Examples
    ///
    /// ```
    /// use quva_device::Topology;
    ///
    /// let t = Topology::ibm_q16_melbourne();
    /// assert_eq!(t.num_qubits(), 14);
    /// assert!(t.is_connected());
    /// ```
    pub fn ibm_q16_melbourne() -> Self {
        Topology::from_links(
            "ibm-q16-melbourne",
            14,
            [
                (1, 0),
                (1, 2),
                (2, 3),
                (4, 3),
                (4, 10),
                (5, 4),
                (5, 6),
                (5, 9),
                (6, 8),
                (7, 8),
                (9, 8),
                (9, 10),
                (11, 3),
                (11, 10),
                (11, 12),
                (12, 2),
                (13, 1),
                (13, 12),
            ],
        )
    }

    /// A heavy-hexagon lattice of the given unit-cell dimensions — the
    /// topology IBM adopted after the paper's era, included to test how
    /// the policies generalize to sparser connectivity.
    ///
    /// Built as a degree-bounded brick pattern: rows of `cols` qubits
    /// connected linearly, with every second vertical rung present,
    /// alternating offset per row pair. All qubit degrees are ≤ 3.
    ///
    /// # Panics
    ///
    /// Panics if `rows < 2` or `cols < 3`.
    ///
    /// # Examples
    ///
    /// ```
    /// use quva_device::Topology;
    ///
    /// let t = Topology::heavy_hex(4, 5);
    /// assert!(t.is_connected());
    /// assert!(t.qubits().all(|q| t.degree(q) <= 3));
    /// ```
    pub fn heavy_hex(rows: usize, cols: usize) -> Self {
        assert!(rows >= 2 && cols >= 3, "heavy-hex needs at least a 2x3 cell");
        let mut links = Vec::new();
        let q = |r: usize, c: usize| (r * cols + c) as u32;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    links.push((q(r, c), q(r, c + 1)));
                }
                // rungs on alternating columns, offset by row parity
                if r + 1 < rows && c % 2 == r % 2 {
                    links.push((q(r, c), q(r + 1, c)));
                }
            }
        }
        Topology::from_links(format!("heavy-hex-{rows}x{cols}"), rows * cols, links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_circuit::PhysQubit;

    #[test]
    fn linear_shape() {
        let t = Topology::linear(4);
        assert_eq!(t.num_qubits(), 4);
        assert_eq!(t.num_links(), 3);
        assert!(t.is_connected());
        assert_eq!(t.degree(PhysQubit(0)), 1);
        assert_eq!(t.degree(PhysQubit(1)), 2);
    }

    #[test]
    fn ring_closes() {
        let t = Topology::ring(5);
        assert_eq!(t.num_links(), 5);
        assert!(t.has_link(PhysQubit(4), PhysQubit(0)));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_rejected() {
        Topology::ring(2);
    }

    #[test]
    fn grid_link_count() {
        // rows*(cols-1) + cols*(rows-1)
        let t = Topology::grid(3, 4);
        assert_eq!(t.num_links(), 3 * 3 + 4 * 2);
        assert!(t.is_connected());
    }

    #[test]
    fn grid_adjacency_is_manhattan() {
        let t = Topology::grid(3, 3);
        assert!(t.has_link(PhysQubit(0), PhysQubit(1)));
        assert!(t.has_link(PhysQubit(0), PhysQubit(3)));
        assert!(!t.has_link(PhysQubit(0), PhysQubit(4))); // no diagonal
    }

    #[test]
    fn fully_connected_count() {
        let t = Topology::fully_connected(5);
        assert_eq!(t.num_links(), 10);
    }

    #[test]
    fn tokyo_matches_paper_counts() {
        let t = Topology::ibm_q20_tokyo();
        assert_eq!(t.num_qubits(), 20);
        // 38 undirected = the paper's 76 directed characterized links
        assert_eq!(t.num_links(), 38);
        assert!(t.is_connected());
        // the mesh part is present
        assert!(t.has_link(PhysQubit(0), PhysQubit(1)));
        assert!(t.has_link(PhysQubit(0), PhysQubit(5)));
        // a diagonal from Fig. 9's crossed cells
        assert!(t.has_link(PhysQubit(1), PhysQubit(7)));
    }

    #[test]
    fn tokyo_max_degree_is_bounded() {
        let t = Topology::ibm_q20_tokyo();
        for q in t.qubits() {
            assert!(t.degree(q) <= 6, "{q} has implausible degree {}", t.degree(q));
        }
    }

    #[test]
    fn tenerife_matches_published_coupling() {
        let t = Topology::ibm_q5_tenerife();
        assert!(t.has_link(PhysQubit(2), PhysQubit(0)));
        assert!(t.has_link(PhysQubit(3), PhysQubit(4)));
        assert!(!t.has_link(PhysQubit(0), PhysQubit(3)));
        assert!(t.is_connected());
    }

    #[test]
    fn melbourne_matches_published_coupling() {
        let t = Topology::ibm_q16_melbourne();
        assert_eq!(t.num_qubits(), 14);
        assert_eq!(t.num_links(), 18);
        assert!(t.is_connected());
        assert!(t.has_link(PhysQubit(13), PhysQubit(1)));
        assert!(t.has_link(PhysQubit(4), PhysQubit(10)));
        assert!(!t.has_link(PhysQubit(0), PhysQubit(13)));
    }

    #[test]
    fn heavy_hex_is_sparse_and_connected() {
        for (rows, cols) in [(2, 3), (3, 5), (4, 7)] {
            let t = Topology::heavy_hex(rows, cols);
            assert!(t.is_connected(), "{rows}x{cols} disconnected");
            for q in t.qubits() {
                assert!(t.degree(q) <= 3, "{rows}x{cols}: {q} has degree {}", t.degree(q));
            }
        }
    }

    #[test]
    fn heavy_hex_is_sparser_than_grid() {
        let hex = Topology::heavy_hex(4, 5);
        let grid = Topology::grid(4, 5);
        assert!(hex.num_links() < grid.num_links());
    }

    #[test]
    #[should_panic(expected = "2x3")]
    fn tiny_heavy_hex_rejected() {
        Topology::heavy_hex(1, 3);
    }
}
