//! Node strength and strongest-subgraph search (paper §6, Algorithm 2).
//!
//! * **node strength** dᵢ = Σⱼ (1 − e2q(i, j)): the weighted degree of a
//!   physical qubit under link *success* weights — strong qubits have
//!   many reliable couplings;
//! * **k-core decomposition** (Batagelj–Zaveršnik) — VQA uses it to peel
//!   off weakly-connected qubits before picking an allocation region;
//! * **strongest k-subgraph** — the connected set of k physical qubits
//!   with the highest aggregate node strength (ANS), the region VQA
//!   allocates into.

use quva_circuit::PhysQubit;

use crate::device::Device;
use crate::topology::Topology;

/// Node strength of every physical qubit: Σ over incident links of the
/// link success probability `1 − e2q`.
///
/// # Examples
///
/// ```
/// use quva_device::{node_strengths, Calibration, Device, Topology};
///
/// let topo = Topology::linear(3);
/// let dev = Device::new(topo, |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
/// let s = node_strengths(&dev);
/// assert!((s[1] - 1.8).abs() < 1e-12); // two links of success 0.9
/// assert!((s[0] - 0.9).abs() < 1e-12);
/// ```
pub fn node_strengths(device: &Device) -> Vec<f64> {
    let topo = device.topology();
    let mut strengths = vec![0.0; topo.num_qubits()];
    for (id, link) in topo.links().iter().enumerate() {
        // dead links contribute no strength: a qubit whose couplers are
        // all disabled is as weak as an isolated one
        if !device.link_enabled(id) {
            continue;
        }
        let success = 1.0 - device.calibration().two_qubit_error(id);
        strengths[link.low().index()] += success;
        strengths[link.high().index()] += success;
    }
    strengths
}

/// K-core decomposition of the coupling graph: `core[q]` is the largest
/// k such that `q` belongs to a subgraph where every member has degree
/// ≥ k inside the subgraph.
///
/// Linear-time peeling algorithm (Batagelj–Zaveršnik, the paper's
/// reference \[2\]).
///
/// # Examples
///
/// ```
/// use quva_device::{k_core_numbers, Topology};
///
/// // a triangle with a pendant vertex
/// let t = Topology::from_links("t", 4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
/// let core = k_core_numbers(&t);
/// assert_eq!(core, vec![2, 2, 2, 1]);
/// ```
pub fn k_core_numbers(topology: &Topology) -> Vec<usize> {
    let n = topology.num_qubits();
    let mut degree: Vec<usize> = (0..n).map(|q| topology.degree(PhysQubit(q as u32))).collect();
    let mut core = vec![0usize; n];
    let mut removed = vec![false; n];
    let mut current_k = 0usize;
    for _ in 0..n {
        // peel the remaining vertex of minimum residual degree; its core
        // number is the running maximum of residual degrees at removal
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| degree[v])
            .unwrap_or_else(|| unreachable!("n iterations over n vertices"));
        current_k = current_k.max(degree[v]);
        core[v] = current_k;
        removed[v] = true;
        for u in topology.neighbors(PhysQubit(v as u32)) {
            let ui = u.index();
            if !removed[ui] && degree[ui] > 0 {
                degree[ui] -= 1;
            }
        }
    }
    core
}

/// The connected subgraph of exactly `k` qubits maximizing aggregate
/// node strength (ANS = Σ strengths), found by greedy expansion from
/// every seed qubit; exact for k ≤ 3 and near-optimal in practice.
///
/// Returns the chosen qubits sorted by descending node strength — the
/// order VQA assigns the most active program qubits in.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the device size, or if no connected
/// k-subgraph exists (disconnected device smaller than k per component).
/// Use [`try_strongest_subgraph`] for a fallible variant.
///
/// # Examples
///
/// ```
/// use quva_device::{strongest_subgraph, Calibration, Device, Topology};
///
/// let topo = Topology::linear(4);
/// let dev = Device::new(topo, |t| {
///     let mut c = Calibration::uniform(t, 0.10, 0.0, 0.0);
///     c.set_two_qubit_error(2, 0.01); // link 2–3 is excellent
///     c
/// });
/// let best = strongest_subgraph(&dev, 2);
/// assert_eq!(best.len(), 2);
/// assert!(best.contains(&quva_circuit::PhysQubit(2)));
/// assert!(best.contains(&quva_circuit::PhysQubit(3)));
/// ```
pub fn strongest_subgraph(device: &Device, k: usize) -> Vec<PhysQubit> {
    let topo = device.topology();
    let n = topo.num_qubits();
    assert!(
        k >= 1 && k <= n,
        "subgraph size {k} out of range for {n}-qubit device"
    );
    try_strongest_subgraph(device, k)
        .unwrap_or_else(|| panic!("device has no connected subgraph of the requested size"))
}

/// Fallible variant of [`strongest_subgraph`]: returns `None` when `k`
/// is out of range or no connected k-subgraph exists.
pub fn try_strongest_subgraph(device: &Device, k: usize) -> Option<Vec<PhysQubit>> {
    candidate_regions(device, k).into_iter().next()
}

/// All distinct connected k-qubit regions found by greedy
/// strength-growth from every seed qubit, strongest first. The §8
/// partitioning study walks this list to find a region pair whose
/// complement can host the second program copy.
pub fn candidate_regions(device: &Device, k: usize) -> Vec<Vec<PhysQubit>> {
    let topo = device.topology();
    let n = topo.num_qubits();
    if k == 0 || k > n {
        return Vec::new();
    }
    let strengths = node_strengths(device);

    let mut found: Vec<(f64, Vec<usize>)> = Vec::new();
    for seed in 0..n {
        // Greedy: grow from the seed, always absorbing the frontier
        // vertex that adds the most *internal* link success.
        let mut members = vec![seed];
        let mut in_set = vec![false; n];
        in_set[seed] = true;
        while members.len() < k {
            let mut candidate: Option<(f64, usize)> = None;
            for &m in &members {
                // only active links can connect a region — growth over a
                // dead coupler would produce an unroutable allocation
                for nb in device.active_neighbors(PhysQubit(m as u32)) {
                    let v = nb.index();
                    if in_set[v] {
                        continue;
                    }
                    // gain = success mass of links from v into the set
                    let gain: f64 = device
                        .active_neighbors(nb)
                        .iter()
                        .filter(|u| in_set[u.index()])
                        .map(|&u| {
                            let id = topo
                                .link_id(nb, u)
                                .unwrap_or_else(|| unreachable!("neighbor implies link"));
                            1.0 - device.calibration().two_qubit_error(id)
                        })
                        .sum::<f64>()
                        + 1e-3 * strengths[v]; // tie-break by global strength
                    match candidate {
                        Some((g, c)) if g > gain || (g == gain && c <= v) => {}
                        _ => candidate = Some((gain, v)),
                    }
                }
            }
            let Some((_, v)) = candidate else { break };
            in_set[v] = true;
            members.push(v);
        }
        if members.len() < k {
            continue; // component too small
        }
        let ans: f64 =
            internal_success(device, &members) + 1e-6 * members.iter().map(|&v| strengths[v]).sum::<f64>();
        // order members by descending node strength — the order VQA
        // assigns the most active program qubits in
        members.sort_by(|&a, &b| strengths[b].total_cmp(&strengths[a]).then(a.cmp(&b)));
        if !found.iter().any(|(_, m)| {
            let mut a = m.clone();
            let mut b = members.clone();
            a.sort_unstable();
            b.sort_unstable();
            a == b
        }) {
            found.push((ans, members));
        }
    }

    found.sort_by(|a, b| b.0.total_cmp(&a.0));
    found
        .into_iter()
        .map(|(_, members)| members.into_iter().map(|v| PhysQubit(v as u32)).collect())
        .collect()
}

/// Total link success mass internal to `region`: Σ over active links
/// with both endpoints inside of `1 − e2q`. The aggregate-strength
/// objective of Algorithm 2, exposed so allocation audits can score an
/// *arbitrary* region (e.g. the one a compiler actually used) on the
/// same scale as [`candidate_regions`].
///
/// # Examples
///
/// ```
/// use quva_circuit::PhysQubit;
/// use quva_device::{region_internal_success, Calibration, Device, Topology};
///
/// let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
/// let s = region_internal_success(&dev, &[PhysQubit(0), PhysQubit(1)]);
/// assert!((s - 0.9).abs() < 1e-12);
/// ```
pub fn region_internal_success(device: &Device, region: &[PhysQubit]) -> f64 {
    let members: Vec<usize> = region.iter().map(|q| q.index()).collect();
    internal_success(device, &members)
}

/// The strongest connected k-region and its internal success mass, or
/// `None` when no connected k-subgraph exists.
pub fn best_region(device: &Device, k: usize) -> Option<(Vec<PhysQubit>, f64)> {
    let region = try_strongest_subgraph(device, k)?;
    let score = region_internal_success(device, &region);
    Some((region, score))
}

/// Total link success mass internal to a vertex set — the objective the
/// greedy maximizes.
fn internal_success(device: &Device, members: &[usize]) -> f64 {
    let topo = device.topology();
    let mut in_set = vec![false; topo.num_qubits()];
    for &m in members {
        in_set[m] = true;
    }
    topo.links()
        .iter()
        .enumerate()
        .filter(|&(id, l)| device.link_enabled(id) && in_set[l.low().index()] && in_set[l.high().index()])
        .map(|(id, _)| 1.0 - device.calibration().two_qubit_error(id))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Calibration;

    fn uniform_device(topo: Topology, e: f64) -> Device {
        Device::new(topo, |t| Calibration::uniform(t, e, 0.0, 0.0))
    }

    #[test]
    fn strengths_sum_link_successes() {
        let dev = uniform_device(Topology::ring(4), 0.2);
        let s = node_strengths(&dev);
        for v in s {
            assert!((v - 1.6).abs() < 1e-12); // 2 links × 0.8
        }
    }

    #[test]
    fn strengths_reflect_variation() {
        let topo = Topology::linear(3);
        let dev = Device::new(topo, |t| {
            let mut c = Calibration::uniform(t, 0.1, 0.0, 0.0);
            c.set_two_qubit_error(0, 0.3); // link 0–1 weak
            c
        });
        let s = node_strengths(&dev);
        assert!(s[2] > s[0]);
    }

    #[test]
    fn k_core_of_line_is_one() {
        let core = k_core_numbers(&Topology::linear(5));
        assert_eq!(core, vec![1; 5]);
    }

    #[test]
    fn k_core_of_clique() {
        let core = k_core_numbers(&Topology::fully_connected(4));
        assert_eq!(core, vec![3; 4]);
    }

    #[test]
    fn k_core_triangle_with_tail() {
        let t = Topology::from_links("t", 5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let core = k_core_numbers(&t);
        assert_eq!(core[0], 2);
        assert_eq!(core[1], 2);
        assert_eq!(core[2], 2);
        assert_eq!(core[3], 1);
        assert_eq!(core[4], 1);
    }

    #[test]
    fn tokyo_core_is_at_least_two() {
        let core = k_core_numbers(&Topology::ibm_q20_tokyo());
        assert!(
            core.iter().all(|&c| c >= 2),
            "mesh interior should be 2-core: {core:?}"
        );
    }

    #[test]
    fn strongest_subgraph_is_connected() {
        let dev = uniform_device(Topology::ibm_q20_tokyo(), 0.05);
        for k in [2, 4, 8, 12] {
            let sg = strongest_subgraph(&dev, k);
            assert_eq!(sg.len(), k);
            // connectivity check by BFS inside the set
            let topo = dev.topology();
            let in_set: Vec<bool> = (0..20).map(|i| sg.contains(&PhysQubit(i))).collect();
            let mut seen = [false; 20];
            let mut stack = vec![sg[0]];
            seen[sg[0].index()] = true;
            let mut count = 1;
            while let Some(v) = stack.pop() {
                for u in topo.neighbors(v) {
                    if in_set[u.index()] && !seen[u.index()] {
                        seen[u.index()] = true;
                        count += 1;
                        stack.push(u);
                    }
                }
            }
            assert_eq!(count, k, "k={k} subgraph disconnected");
        }
    }

    #[test]
    fn strongest_subgraph_avoids_weak_region() {
        let topo = Topology::linear(6);
        let dev = Device::new(topo, |t| {
            let mut c = Calibration::uniform(t, 0.02, 0.0, 0.0);
            // poison the left half
            c.set_two_qubit_error(0, 0.3);
            c.set_two_qubit_error(1, 0.3);
            c
        });
        let sg = strongest_subgraph(&dev, 3);
        for q in &sg {
            assert!(q.index() >= 2, "picked weak-region qubit {q}");
        }
    }

    #[test]
    fn strongest_subgraph_orders_by_strength() {
        let dev = uniform_device(Topology::ibm_q20_tokyo(), 0.05);
        let strengths = node_strengths(&dev);
        let sg = strongest_subgraph(&dev, 5);
        for w in sg.windows(2) {
            assert!(strengths[w[0].index()] >= strengths[w[1].index()]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn strongest_subgraph_rejects_zero() {
        let dev = uniform_device(Topology::linear(3), 0.05);
        strongest_subgraph(&dev, 0);
    }

    #[test]
    fn full_size_subgraph_is_everything() {
        let dev = uniform_device(Topology::linear(4), 0.05);
        let sg = strongest_subgraph(&dev, 4);
        assert_eq!(sg.len(), 4);
    }

    #[test]
    fn dead_links_shrink_strength_and_regions() {
        let dev =
            uniform_device(Topology::linear(4), 0.1).with_disabled_links([(PhysQubit(1), PhysQubit(2))]);
        let s = node_strengths(&dev);
        assert!((s[1] - 0.9).abs() < 1e-12, "dead link still adds strength: {s:?}");
        // the active graph is 0-1 / 2-3: no connected 3-subgraph exists
        assert!(try_strongest_subgraph(&dev, 3).is_none());
        let pair = try_strongest_subgraph(&dev, 2).unwrap();
        let mut sorted = pair.clone();
        sorted.sort();
        assert!(sorted == vec![PhysQubit(0), PhysQubit(1)] || sorted == vec![PhysQubit(2), PhysQubit(3)]);
    }

    #[test]
    fn try_variant_handles_impossible_sizes() {
        let dev = uniform_device(Topology::from_links("split", 4, [(0, 1), (2, 3)]), 0.05);
        assert!(
            try_strongest_subgraph(&dev, 3).is_none(),
            "no connected 3-subgraph exists"
        );
        assert!(try_strongest_subgraph(&dev, 2).is_some());
        assert!(try_strongest_subgraph(&dev, 0).is_none());
        assert!(try_strongest_subgraph(&dev, 9).is_none());
    }
}
