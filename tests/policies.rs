//! Cross-crate tests of the paper's policy claims.

use proptest::prelude::*;
use quva::{partition_analysis, AllocationStrategy, MappingPolicy, RoutingMetric};
use quva_circuit::{Circuit, Qubit};
use quva_device::{Calibration, Device, Topology};
use quva_sim::CoherenceModel;

fn gate_pst(policy: MappingPolicy, program: &Circuit, device: &Device) -> f64 {
    policy
        .compile(program, device)
        .expect("test programs compile")
        .analytic_pst(device, CoherenceModel::Disabled)
        .expect("compiled circuits evaluate")
        .pst
}

#[test]
fn vqm_beats_baseline_on_q20_for_every_table1_workload() {
    let device = Device::ibm_q20();
    for bench in quva_benchmarks::table1_suite() {
        let base = gate_pst(MappingPolicy::baseline(), bench.circuit(), &device);
        let vqm = gate_pst(MappingPolicy::vqm(), bench.circuit(), &device);
        assert!(
            vqm >= base * 0.95,
            "{}: VQM {vqm} lost to baseline {base}",
            bench.name()
        );
    }
}

#[test]
fn vqa_vqm_never_falls_below_vqm() {
    // the Fig. 13 dominance property, guaranteed by the compile portfolio
    let device = Device::ibm_q20();
    for bench in quva_benchmarks::table1_suite() {
        let vqm = gate_pst(MappingPolicy::vqm(), bench.circuit(), &device);
        let combo = gate_pst(MappingPolicy::vqa_vqm(), bench.circuit(), &device);
        assert!(
            combo >= vqm * (1.0 - 1e-9),
            "{}: VQA+VQM {combo} below VQM {vqm}",
            bench.name()
        );
    }
}

#[test]
fn baseline_beats_native_average_on_q20() {
    // §6.4: the locality-aware baseline dominates random allocation on
    // average (the paper reports 4x)
    let device = Device::ibm_q20();
    for bench in quva_benchmarks::table1_suite() {
        let base = gate_pst(MappingPolicy::baseline(), bench.circuit(), &device);
        let native_avg: f64 = (0..16)
            .map(|s| gate_pst(MappingPolicy::native(s), bench.circuit(), &device))
            .sum::<f64>()
            / 16.0;
        assert!(
            base > native_avg,
            "{}: baseline {base} vs native average {native_avg}",
            bench.name()
        );
    }
}

#[test]
fn figure_1_worked_example_vqm_takes_the_long_route() {
    // Fig. 1: five qubits in a ring; the direct path A-B-C uses weak
    // links while A-E-D-C is strong. VQM must deliver a higher success
    // probability despite inserting more SWAPs.
    let topo = Topology::ring(5); // links (0,1)(1,2)(2,3)(3,4)(4,0)
    let device = Device::new(topo, |t| {
        let mut cal = Calibration::uniform(t, 0.1, 0.0, 0.0);
        cal.set_two_qubit_error(0, 0.4); // A-B
        cal.set_two_qubit_error(1, 0.3); // B-C
        cal
    });
    let mut program = Circuit::new(5);
    for i in 0..5u32 {
        program.h(Qubit(i)); // pin the identity-ish allocation by using all qubits
    }
    program.cnot(Qubit(0), Qubit(2));

    // sweep placements: VQM must never lose and must strictly win
    // whenever the pair's route actually crosses the weak arc
    let mut strict_win = false;
    for seed in 0..12 {
        let fixed_alloc = AllocationStrategy::Random { seed };
        let base = MappingPolicy {
            allocation: fixed_alloc,
            routing: RoutingMetric::Hops,
        };
        let vqm = MappingPolicy {
            allocation: fixed_alloc,
            routing: RoutingMetric::reliability(),
        };
        let pst_base = gate_pst(base, &program, &device);
        let pst_vqm = gate_pst(vqm, &program, &device);
        assert!(
            pst_vqm >= pst_base - 1e-12,
            "seed {seed}: VQM {pst_vqm} lost to baseline {pst_base}"
        );
        if pst_vqm > pst_base + 1e-9 {
            strict_win = true;
        }
    }
    assert!(strict_win, "no placement exercised the Fig. 1 detour");
}

#[test]
fn partitioning_reports_cover_the_section_8_suite() {
    let device = Device::ibm_q20();
    for bench in quva_benchmarks::partition_suite() {
        let report = partition_analysis(
            bench.circuit(),
            &device,
            MappingPolicy::vqa_vqm(),
            CoherenceModel::Disabled,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        let (x, y) = report
            .two_copies
            .as_ref()
            .expect("two 10-qubit copies fit on 20 qubits");
        assert!(x.pst > 0.0 && y.pst > 0.0);
        // disjoint regions of the right size
        assert_eq!(x.region.len(), 10);
        assert_eq!(y.region.len(), 10);
        for q in &x.region {
            assert!(!y.region.contains(q));
        }
    }
}

#[test]
fn hop_limited_vqm_inserts_bounded_swaps() {
    // MAH=0 must reproduce baseline swap counts exactly; MAH=4 may add
    // at most 4 per routed CNOT
    let device = Device::ibm_q20();
    let program = quva_benchmarks::bv(16);
    let strict = MappingPolicy {
        allocation: AllocationStrategy::GreedyInteraction,
        routing: RoutingMetric::Reliability {
            max_additional_hops: Some(0),
            optimize_meeting_edge: false,
        },
    };
    let base = MappingPolicy::baseline().compile(&program, &device).unwrap();
    let limited = strict.compile(&program, &device).unwrap();
    // same allocation, hop-strict routing: swap totals stay in the same
    // ballpark (not identical: tie-breaks differ between metrics)
    assert!(
        limited.inserted_swaps() <= base.inserted_swaps() + program.cnot_count(),
        "MAH=0 inserted {} vs baseline {}",
        limited.inserted_swaps(),
        base.inserted_swaps()
    );
}

#[test]
fn vqm_shifts_traffic_off_weak_links() {
    // the paper's core mechanism, observed directly: the
    // utilization-weighted link error of VQM-compiled circuits is lower
    // than the baseline's
    let device = Device::ibm_q20();
    let mut improved = 0;
    let mut total = 0;
    for bench in quva_benchmarks::table1_suite() {
        let base = MappingPolicy::baseline()
            .compile(bench.circuit(), &device)
            .unwrap();
        let vqm = MappingPolicy::vqm().compile(bench.circuit(), &device).unwrap();
        let e_base = base.experienced_link_error(&device);
        let e_vqm = vqm.experienced_link_error(&device);
        total += 1;
        if e_vqm < e_base {
            improved += 1;
        }
    }
    assert!(
        improved >= total - 1,
        "VQM lowered experienced link error on only {improved}/{total} workloads"
    );
}

#[test]
fn link_utilization_accounts_every_two_qubit_op() {
    let device = Device::ibm_q20();
    let compiled = MappingPolicy::baseline()
        .compile(quva_benchmarks::Benchmark::qft(10).circuit(), &device)
        .unwrap();
    let usage = compiled.link_utilization(&device);
    let total: usize = usage.iter().sum();
    assert_eq!(total, compiled.physical().total_cnot_cost());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under a uniform error map, variation-aware routing has nothing to
    /// exploit: VQM compiles to the same reliability as the baseline.
    #[test]
    fn vqm_equals_baseline_without_variation(seed in 0u64..500) {
        let device = Device::new(Topology::grid(2, 4), |t| Calibration::uniform(t, 0.04, 0.001, 0.02));
        let program = quva_benchmarks::rnd(6, 12, quva_benchmarks::RandDistance::Short, seed);
        let base = gate_pst(MappingPolicy::baseline(), &program, &device);
        let vqm = gate_pst(MappingPolicy::vqm(), &program, &device);
        // identical link quality everywhere: any differences come only
        // from tie-breaking, so reliabilities must agree closely
        prop_assert!((vqm / base - 1.0).abs() < 0.25, "uniform device: vqm {vqm} vs base {base}");
    }

    /// Compilation is deterministic: same inputs, same output.
    #[test]
    fn compilation_is_deterministic(seed in 0u64..500) {
        let device = Device::ibm_q20();
        let program = quva_benchmarks::rnd(10, 20, quva_benchmarks::RandDistance::Long, seed);
        let a = MappingPolicy::vqa_vqm().compile(&program, &device).unwrap();
        let b = MappingPolicy::vqa_vqm().compile(&program, &device).unwrap();
        prop_assert_eq!(a, b);
    }
}
