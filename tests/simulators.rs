//! Cross-validation of the three reliability engines: analytic PST,
//! Monte-Carlo fault injection, and the noisy state-vector simulator.

use proptest::prelude::*;
use quva::MappingPolicy;
use quva_circuit::{Circuit, PhysQubit, Qubit};
use quva_device::{Calibration, Device, Topology};
use quva_sim::{analytic_pst, monte_carlo_pst, run_noisy_trials, CoherenceModel, StateVector};

/// A small random routed circuit directly over physical qubits.
fn random_physical_circuit(seed: u64, device: &Device) -> Circuit<PhysQubit> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = device.topology();
    let mut c: Circuit<PhysQubit> = Circuit::new(device.num_qubits());
    for _ in 0..20 {
        match rng.random_range(0..3) {
            0 => {
                let q = PhysQubit(rng.random_range(0..device.num_qubits() as u32));
                c.h(q);
            }
            1 => {
                let link = topo.links()[rng.random_range(0..topo.num_links())];
                c.cnot(link.low(), link.high());
            }
            _ => {
                let link = topo.links()[rng.random_range(0..topo.num_links())];
                c.swap(link.low(), link.high());
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The Monte-Carlo injector converges to the analytic PST (they
    /// share the same failure profile, so this validates the sampling).
    #[test]
    fn monte_carlo_matches_analytic(seed in 0u64..1000) {
        let device = Device::new(Topology::grid(2, 3), |t| {
            let mut cal = Calibration::uniform(t, 0.05, 0.004, 0.02);
            cal.set_two_qubit_error(0, 0.12);
            cal
        });
        let circuit = random_physical_circuit(seed, &device);
        let exact = analytic_pst(&device, &circuit, CoherenceModel::Disabled).unwrap().pst;
        let est = monte_carlo_pst(&device, &circuit, 60_000, seed, CoherenceModel::Disabled).unwrap();
        let tolerance = 5.0 * est.std_error() + 1e-3;
        prop_assert!(
            (est.pst - exact).abs() < tolerance,
            "seed {seed}: MC {} vs analytic {exact}", est.pst
        );
    }

    /// State-vector simulation preserves the norm through arbitrary
    /// gate sequences.
    #[test]
    fn statevector_norm_is_preserved(seed in 0u64..1000) {
        let device = Device::new(Topology::grid(2, 3), |t| Calibration::uniform(t, 0.0, 0.0, 0.0));
        let circuit = random_physical_circuit(seed, &device);
        let mut sv = StateVector::new(6);
        for gate in &circuit {
            if !gate.is_measurement() {
                sv.apply_gate(gate);
            }
        }
        prop_assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    /// On a noise-free device, the noisy simulator reproduces ideal
    /// semantics: BV always finds its secret.
    #[test]
    fn noiseless_trials_are_ideal(n in 3usize..6) {
        let device = Device::new(Topology::fully_connected(n), |t| Calibration::uniform(t, 0.0, 0.0, 0.0));
        let bench = quva_benchmarks::Benchmark::bv(n);
        let compiled = MappingPolicy::baseline().compile(bench.circuit(), &device).unwrap();
        let outcomes = run_noisy_trials(&device, compiled.physical(), 64, 5).unwrap();
        prop_assert_eq!(outcomes.success_rate(|o| bench.is_success(o)), 1.0);
    }

    /// The peephole optimizer preserves circuit semantics: the optimized
    /// circuit produces the same state-vector probabilities as the
    /// original.
    #[test]
    fn optimizer_preserves_semantics(seed in 0u64..1000) {
        let device = Device::new(Topology::grid(2, 3), |t| Calibration::uniform(t, 0.0, 0.0, 0.0));
        let circuit = random_physical_circuit(seed, &device);
        let (optimized, _) = quva_circuit::optimize(&circuit);

        let run = |c: &Circuit<PhysQubit>| -> StateVector {
            let mut sv = StateVector::new(6);
            for g in c {
                if !g.is_measurement() {
                    sv.apply_gate(g);
                }
            }
            sv
        };
        let a = run(&circuit);
        let b = run(&optimized);
        for basis in 0..(1u64 << 6) {
            prop_assert!(
                (a.probability(basis) - b.probability(basis)).abs() < 1e-9,
                "basis {basis:b} diverged after optimization"
            );
        }
    }

    /// The correlated injector with correlation turned off agrees with
    /// the independent injector.
    #[test]
    fn correlated_off_equals_independent(seed in 0u64..200) {
        use quva_sim::{monte_carlo_pst_correlated, CorrelatedModel};
        let device = Device::new(Topology::grid(2, 3), |t| Calibration::uniform(t, 0.06, 0.002, 0.02));
        let circuit = random_physical_circuit(seed, &device);
        let exact = analytic_pst(&device, &circuit, CoherenceModel::Disabled).unwrap().pst;
        let est = monte_carlo_pst_correlated(&device, &circuit, 40_000, seed, CorrelatedModel::independent())
            .unwrap();
        prop_assert!(
            (est.pst - exact).abs() < 5.0 * est.std_error() + 2e-3,
            "correlated-off {} vs analytic {exact}", est.pst
        );
    }
}

#[test]
fn grover_finds_every_marked_item_noiselessly() {
    let device = Device::new(Topology::fully_connected(2), |t| {
        Calibration::uniform(t, 0.0, 0.0, 0.0)
    });
    for marked in 0..4u64 {
        let bench = quva_benchmarks::Benchmark::grover2(marked);
        let compiled = MappingPolicy::baseline()
            .compile(bench.circuit(), &device)
            .unwrap();
        let out = run_noisy_trials(&device, compiled.physical(), 128, 1).unwrap();
        assert_eq!(
            out.success_rate(|o| o == marked),
            1.0,
            "grover2 missed marked item {marked}"
        );
    }
}

#[test]
fn w_state_yields_uniform_one_hot_outcomes() {
    let device = Device::new(Topology::fully_connected(4), |t| {
        Calibration::uniform(t, 0.0, 0.0, 0.0)
    });
    let bench = quva_benchmarks::Benchmark::w_state(4);
    let compiled = MappingPolicy::baseline()
        .compile(bench.circuit(), &device)
        .unwrap();
    let out = run_noisy_trials(&device, compiled.physical(), 8000, 2).unwrap();
    // every outcome is one-hot
    assert_eq!(out.success_rate(|o| bench.is_success(o)), 1.0);
    // and roughly uniform over the four excitation positions
    for i in 0..4 {
        let frac = out.count(1 << i) as f64 / 8000.0;
        assert!((frac - 0.25).abs() < 0.03, "qubit {i} weight {frac}");
    }
}

#[test]
fn mirror_benchmark_returns_to_zero_noiselessly() {
    let device = Device::new(Topology::fully_connected(5), |t| {
        Calibration::uniform(t, 0.0, 0.0, 0.0)
    });
    for seed in 0..4 {
        let bench = quva_benchmarks::Benchmark::mirror(5, 4, seed);
        let compiled = MappingPolicy::vqa_vqm()
            .compile(bench.circuit(), &device)
            .unwrap();
        let out = run_noisy_trials(&device, compiled.physical(), 64, 3).unwrap();
        assert_eq!(out.count(0), 64, "mirror seed {seed} failed to return to |0…0⟩");
    }
}

#[test]
fn analytic_pst_is_order_invariant_for_commuting_views() {
    // PST depends only on the multiset of operations, not their order
    let device = Device::new(Topology::linear(3), |t| {
        Calibration::uniform(t, 0.07, 0.002, 0.03)
    });
    let mut a: Circuit<PhysQubit> = Circuit::new(3);
    a.h(PhysQubit(0))
        .cnot(PhysQubit(0), PhysQubit(1))
        .swap(PhysQubit(1), PhysQubit(2));
    let mut b: Circuit<PhysQubit> = Circuit::new(3);
    b.swap(PhysQubit(1), PhysQubit(2))
        .h(PhysQubit(0))
        .cnot(PhysQubit(0), PhysQubit(1));
    let pa = analytic_pst(&device, &a, CoherenceModel::Disabled).unwrap().pst;
    let pb = analytic_pst(&device, &b, CoherenceModel::Disabled).unwrap().pst;
    assert!((pa - pb).abs() < 1e-12);
}

#[test]
fn noisy_simulator_ranks_policies_like_the_analytic_model() {
    // §7's point: the policy ranking carries over to a noise model the
    // compiler did not optimize against
    let device = Device::ibm_q5();
    let bench = quva_benchmarks::Benchmark::triswap();
    let rank = |policy: MappingPolicy| -> f64 {
        let compiled = policy.compile(bench.circuit(), &device).unwrap();
        run_noisy_trials(&device, compiled.physical(), 8192, 3)
            .unwrap()
            .success_rate(|o| bench.is_success(o))
    };
    let native = rank(MappingPolicy::native(5));
    let aware = rank(MappingPolicy::vqa_vqm());
    assert!(
        aware >= native,
        "variation-aware {aware} under native {native} on the noisy Q5"
    );
}

#[test]
fn coherence_model_only_lowers_pst() {
    let device = Device::ibm_q20();
    let program = quva_benchmarks::bv(16);
    let compiled = MappingPolicy::baseline().compile(&program, &device).unwrap();
    let without = compiled
        .analytic_pst(&device, CoherenceModel::Disabled)
        .unwrap()
        .pst;
    let with = compiled
        .analytic_pst(&device, CoherenceModel::IdleWindow)
        .unwrap()
        .pst;
    assert!(with <= without);
    assert!(with > 0.0);
}

#[test]
fn gate_errors_weigh_at_least_as_much_as_coherence_for_bv20() {
    // the §4.4 claim (the paper reports 16x with a gentler idle model;
    // our idle-window model charges decoherence more aggressively, so
    // we assert the same order of magnitude rather than the exact ratio
    // — see EXPERIMENTS.md)
    let device = Device::ibm_q20();
    let program = quva_benchmarks::bv(20);
    let compiled = MappingPolicy::baseline().compile(&program, &device).unwrap();
    let report = compiled
        .analytic_pst(&device, CoherenceModel::IdleWindow)
        .unwrap();
    let ratio = report.gate_to_coherence_ratio();
    assert!((0.4..1000.0).contains(&ratio), "gate/coherence ratio {ratio}");
}

#[test]
fn readout_errors_affect_noisy_outcomes_only_at_measurement() {
    let device = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.0, 0.0, 0.25));
    let mut c: Circuit<PhysQubit> = Circuit::new(2);
    c.x(PhysQubit(0));
    c.measure(PhysQubit(0), quva_circuit::Cbit(0));
    let out = run_noisy_trials(&device, &c, 8000, 1).unwrap();
    let correct = out.count(0b1) as f64 / 8000.0;
    assert!((correct - 0.75).abs() < 0.03, "readout accuracy {correct}");
}

#[test]
fn fig16_shape_two_copy_rate_gain_is_bounded() {
    // §8.1: running two copies never doubles the successful-trial rate
    // on a variable machine relative to one strong copy's PST advantage
    let device = Device::ibm_q20();
    let bench = quva_benchmarks::Benchmark::bv(10);
    let report = quva::partition_analysis(
        bench.circuit(),
        &device,
        MappingPolicy::vqa_vqm(),
        CoherenceModel::Disabled,
    )
    .unwrap();
    let (x, y) = report.two_copies.as_ref().unwrap();
    // the weaker copy cannot beat the strong full-machine copy
    assert!(y.pst.min(x.pst) <= report.one_strong.pst + 1e-9);
}

#[test]
fn mapping_identity_smoke_for_qubit_types() {
    // compile a trivially-mapped program and cross-check all three engines
    let device = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
    let mut program = Circuit::new(2);
    program.cnot(Qubit(0), Qubit(1));
    let compiled = MappingPolicy::baseline().compile(&program, &device).unwrap();
    let exact = compiled
        .analytic_pst(&device, CoherenceModel::Disabled)
        .unwrap()
        .pst;
    assert!((exact - 0.9).abs() < 1e-12);
    let mc = monte_carlo_pst(&device, compiled.physical(), 50_000, 2, CoherenceModel::Disabled).unwrap();
    assert!((mc.pst - 0.9).abs() < 0.01);
}
