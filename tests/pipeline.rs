//! End-to-end pipeline tests: benchmark generators → allocation →
//! routing → reliability evaluation, across every policy.
//!
//! The central correctness property: a routed circuit is *semantically
//! identical* to the source program — verified by exact state-vector
//! simulation of both, related through the initial and final mappings.

use quva::{CompiledCircuit, MappingPolicy};
use quva_circuit::{Circuit, Gate, Qubit};
use quva_device::{Calibration, Device, Topology};
use quva_sim::{CoherenceModel, StateVector};

fn all_policies() -> Vec<MappingPolicy> {
    vec![
        MappingPolicy::native(1),
        MappingPolicy::baseline(),
        MappingPolicy::vqm(),
        MappingPolicy::vqm_hop_limited(),
        MappingPolicy::vqa_vqm(),
    ]
}

/// Every two-qubit gate of the compiled circuit must lie on a coupling
/// link of the device.
fn assert_routed(compiled: &CompiledCircuit, device: &Device) {
    for g in compiled.physical() {
        if let Gate::Cnot {
            control: a,
            target: b,
        }
        | Gate::Swap { a, b } = g
        {
            assert!(
                device.topology().has_link(*a, *b),
                "{g} is not on a coupling link"
            );
        }
    }
}

/// The routed circuit must implement the same unitary as the source,
/// up to the relabeling given by the initial and final mappings.
fn assert_semantically_equal(source: &Circuit, compiled: &CompiledCircuit, device: &Device) {
    let n_phys = device.num_qubits();
    assert!(n_phys <= 12, "state-vector check limited to small devices");

    // source program embedded at its initial physical locations
    let mut sv_src = StateVector::new(n_phys);
    for gate in source {
        if gate.is_measurement() {
            continue;
        }
        let mapped = gate.map_qubits(|q| compiled.initial_mapping().phys_of(q));
        sv_src.apply_gate(&mapped);
    }

    // the routed physical program
    let mut sv_routed = StateVector::new(n_phys);
    for gate in compiled.physical() {
        if gate.is_measurement() {
            continue;
        }
        sv_routed.apply_gate(gate);
    }

    // compare the probability of every program-qubit basis assignment
    let k = source.num_qubits();
    for assignment in 0u64..(1 << k) {
        let mut src_basis = 0u64;
        let mut routed_basis = 0u64;
        for q in 0..k {
            if assignment >> q & 1 == 1 {
                src_basis |= 1 << compiled.initial_mapping().phys_of(Qubit(q as u32)).index();
                routed_basis |= 1 << compiled.final_mapping().phys_of(Qubit(q as u32)).index();
            }
        }
        let p_src = sv_src.probability(src_basis);
        let p_routed = sv_routed.probability(routed_basis);
        assert!(
            (p_src - p_routed).abs() < 1e-9,
            "assignment {assignment:b}: source prob {p_src} vs routed {p_routed}"
        );
    }
}

fn small_device() -> Device {
    // 2x4 mesh with mild variation
    Device::new(Topology::grid(2, 4), |t| {
        let mut cal = Calibration::uniform(t, 0.03, 0.001, 0.02);
        cal.set_two_qubit_error(0, 0.12);
        cal.set_two_qubit_error(5, 0.01);
        cal
    })
}

#[test]
fn bv_routes_and_preserves_semantics_under_every_policy() {
    let device = small_device();
    let program = quva_benchmarks::bv(5);
    for policy in all_policies() {
        let compiled = policy
            .compile(&program, &device)
            .expect("bv-5 compiles on 8 qubits");
        assert_routed(&compiled, &device);
        assert_semantically_equal(&program, &compiled, &device);
    }
}

#[test]
fn ghz_routes_and_preserves_semantics_under_every_policy() {
    let device = small_device();
    let program = quva_benchmarks::ghz(6);
    for policy in all_policies() {
        let compiled = policy
            .compile(&program, &device)
            .expect("ghz-6 compiles on 8 qubits");
        assert_routed(&compiled, &device);
        assert_semantically_equal(&program, &compiled, &device);
    }
}

#[test]
fn qft_routes_and_preserves_semantics_under_every_policy() {
    let device = small_device();
    let program = quva_benchmarks::qft(5);
    for policy in all_policies() {
        let compiled = policy
            .compile(&program, &device)
            .expect("qft-5 compiles on 8 qubits");
        assert_routed(&compiled, &device);
        assert_semantically_equal(&program, &compiled, &device);
    }
}

#[test]
fn triswap_preserves_semantics() {
    let device = small_device();
    let program = quva_benchmarks::triswap();
    for policy in all_policies() {
        let compiled = policy.compile(&program, &device).expect("triswap compiles");
        assert_routed(&compiled, &device);
        assert_semantically_equal(&program, &compiled, &device);
    }
}

#[test]
fn full_suite_compiles_on_ibm_q20() {
    let device = Device::ibm_q20();
    for bench in quva_benchmarks::table1_suite() {
        for policy in all_policies() {
            let compiled = policy
                .compile(bench.circuit(), &device)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", policy.name(), bench.name()));
            assert_routed(&compiled, &device);
            let pst = compiled
                .analytic_pst(&device, CoherenceModel::IdleWindow)
                .expect("routed circuit evaluates")
                .pst;
            assert!(
                pst > 0.0 && pst <= 1.0,
                "{} on {}: PST {pst}",
                policy.name(),
                bench.name()
            );
        }
    }
}

#[test]
fn q5_suite_compiles_on_tenerife() {
    let device = Device::ibm_q5();
    for bench in quva_benchmarks::ibm_q5_suite() {
        for policy in all_policies() {
            let compiled = policy
                .compile(bench.circuit(), &device)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", policy.name(), bench.name()));
            assert_routed(&compiled, &device);
        }
    }
}

#[test]
fn measurements_follow_their_qubits() {
    // route a program where the measured qubit must move, and verify
    // the measurement lands on its final physical home
    let device = Device::new(Topology::linear(5), |t| Calibration::uniform(t, 0.05, 0.0, 0.01));
    let mut program = Circuit::new(5);
    for i in 0..5u32 {
        program.h(Qubit(i));
    }
    program.cnot(Qubit(0), Qubit(4));
    program.measure(Qubit(0), quva_circuit::Cbit(0));
    let compiled = MappingPolicy::baseline().compile(&program, &device).unwrap();
    let measured = compiled
        .physical()
        .iter()
        .find_map(|g| match g {
            Gate::Measure { qubit, .. } => Some(*qubit),
            _ => None,
        })
        .expect("measurement survives compilation");
    assert_eq!(measured, compiled.final_mapping().phys_of(Qubit(0)));
}

#[test]
fn compiled_swap_counts_are_reported_consistently() {
    let device = Device::ibm_q20();
    let program = quva_benchmarks::qft(12);
    let compiled = MappingPolicy::baseline().compile(&program, &device).unwrap();
    let source_swaps = program.swap_count();
    assert_eq!(
        compiled.physical().swap_count(),
        source_swaps + compiled.inserted_swaps(),
        "physical swaps = program swaps + inserted swaps"
    );
}
