//! Value-generation strategies and combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }

    /// Keeps only values for which `filter_map` returns `Some`,
    /// resampling otherwise. `whence` labels the filter in the panic
    /// raised if rejection never terminates.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        whence: &'static str,
        filter_map: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            filter_map,
            whence,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    filter_map: F,
    whence: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..1000 {
            if let Some(value) = (self.filter_map)(self.inner.generate(rng)) {
                return value;
            }
        }
        panic!(
            "prop_filter_map '{}' rejected 1000 consecutive samples",
            self.whence
        )
    }
}

/// Whole-domain strategy for `bool` (see [`crate::any`]).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// A type-erased, reference-counted strategy (as produced by
/// [`Strategy::boxed`] and consumed by [`OneOf`]).
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between same-valued strategies (see
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds the union.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.options.len());
        self.options[arm].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range {}..{}", self.start, self.end);
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((u128::from(rng.next_u64()).wrapping_mul(span)) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = ((u128::from(rng.next_u64()).wrapping_mul(span)) >> 64) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}
