//! Test configuration and the deterministic generation RNG.

/// Per-block configuration for [`proptest!`](crate::proptest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generation RNG (SplitMix64). The stream is a pure
/// function of the test's module path + name and the case number, so
/// every run of the suite generates identical inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

fn fnv1a64(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl TestRng {
    /// The RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        TestRng {
            state: fnv1a64(test_name) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` via 128-bit widening multiply.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample below 0");
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::for_case("r", 0);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }
}
