//! Strategies over collections.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Vec`s whose length is drawn from `len` and whose
/// elements are drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generates vectors of `element` values with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.len.start < self.len.end, "cannot sample empty length range");
        let span = self.len.end - self.len.start;
        let len = self.len.start + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
