//! Sequence-related extensions.

use crate::sample::SampleRange;
use crate::RngCore;

/// Randomization of slices.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates; uniform over all
    /// permutations up to the generator's quality).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_from(rng);
            self.swap(i, j);
        }
    }
}
