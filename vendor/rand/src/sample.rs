//! Distributions over the raw 64-bit stream.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Types with a canonical "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Uniform `[0, 1)` from the top 53 bits (every value is an exact
/// multiple of 2^−53, matching the conventional conversion).
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // use a high bit; low bits of some generators are weaker
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw draw onto `[0, span)` by 128-bit widening multiply
/// (Lemire's method without the rejection step; bias is at most
/// span/2^64, negligible for the range sizes used here).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= 1 << 64);
    (u128::from(rng.next_u64()).wrapping_mul(span)) >> 64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range {}..{}", self.start, self.end);
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample empty range {}..{}",
            self.start,
            self.end
        );
        let x = self.start + unit_f64(rng) * (self.end - self.start);
        // guard against rounding up to the excluded endpoint
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
        lo + unit_f64(rng) * (hi - lo)
    }
}
