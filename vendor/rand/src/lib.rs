//! Offline stand-in for the subset of the `rand` 0.9 API used by this
//! workspace (see `vendor/README.md`).
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, deterministic, portable generator. Streams differ from
//! the real `rand` crate's `StdRng` (which is ChaCha-based); any test
//! asserting exact sampled values is pinned to this implementation.

pub mod rngs;
pub mod seq;

mod sample;

pub use sample::{SampleRange, StandardSample};

/// Raw 64-bit random output. The single primitive every distribution
/// here is derived from.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`:
    /// uniform `[0, 1)` for `f64`, a fair coin for `bool`, uniform over
    /// all values for the integer types.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_forms_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a: usize = rng.random_range(0..7);
            assert!(a < 7);
            let b: i32 = rng.random_range(-314..314);
            assert!((-314..314).contains(&b));
            let c: u8 = rng.random_range(1..16u8);
            assert!((1..16).contains(&c));
            let d: usize = rng.random_range(1..=2usize);
            assert!((1..=2).contains(&d));
            let e: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(e > 0.0 && e < 1.0);
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen {seen:?}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let heads = (0..100_000).filter(|_| rng.random::<bool>()).count();
        assert!((45_000..55_000).contains(&heads), "heads {heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: usize = rng.random_range(3..3);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
