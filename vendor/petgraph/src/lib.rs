//! Offline stand-in for the subset of the `petgraph` 0.8 API used by
//! this workspace (see `vendor/README.md`): an adjacency-list
//! undirected graph with node weights and neighbor iteration.

pub mod graph;
