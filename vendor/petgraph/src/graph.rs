//! Adjacency-list graph core.

use std::ops::Index;

/// Identifier of a node: its insertion index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIndex(usize);

impl NodeIndex {
    /// Wraps a raw index.
    pub fn new(index: usize) -> Self {
        NodeIndex(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an edge: its insertion index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeIndex(usize);

impl EdgeIndex {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An undirected graph with node weights `N` and edge weights `E`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnGraph<N, E> {
    nodes: Vec<N>,
    adjacency: Vec<Vec<usize>>,
    edges: Vec<(usize, usize, E)>,
}

impl<N, E> Default for UnGraph<N, E> {
    fn default() -> Self {
        Self::new_undirected()
    }
}

impl<N, E> UnGraph<N, E> {
    /// An empty undirected graph.
    pub fn new_undirected() -> Self {
        UnGraph {
            nodes: Vec::new(),
            adjacency: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a node and returns its index.
    pub fn add_node(&mut self, weight: N) -> NodeIndex {
        self.nodes.push(weight);
        self.adjacency.push(Vec::new());
        NodeIndex(self.nodes.len() - 1)
    }

    /// Adds an undirected edge between `a` and `b`.
    ///
    /// Parallel edges are allowed (callers deduplicate); self-loops are
    /// stored once in the adjacency list.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, a: NodeIndex, b: NodeIndex, weight: E) -> EdgeIndex {
        assert!(
            a.0 < self.nodes.len() && b.0 < self.nodes.len(),
            "edge endpoint out of range"
        );
        self.adjacency[a.0].push(b.0);
        if a != b {
            self.adjacency[b.0].push(a.0);
        }
        self.edges.push((a.0, b.0, weight));
        EdgeIndex(self.edges.len() - 1)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over the neighbors of `a`, in edge insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn neighbors(&self, a: NodeIndex) -> Neighbors<'_> {
        Neighbors {
            inner: self.adjacency[a.0].iter(),
        }
    }

    /// The weight of node `a`, if present.
    pub fn node_weight(&self, a: NodeIndex) -> Option<&N> {
        self.nodes.get(a.0)
    }
}

impl<N, E> Index<NodeIndex> for UnGraph<N, E> {
    type Output = N;

    fn index(&self, index: NodeIndex) -> &N {
        &self.nodes[index.0]
    }
}

/// Iterator over the neighbors of one node.
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    inner: std::slice::Iter<'a, usize>,
}

impl Iterator for Neighbors<'_> {
    type Item = NodeIndex;

    fn next(&mut self) -> Option<NodeIndex> {
        self.inner.next().map(|&i| NodeIndex(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_traverse() {
        let mut g: UnGraph<u32, ()> = UnGraph::new_undirected();
        let a = g.add_node(10);
        let b = g.add_node(20);
        let c = g.add_node(30);
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g[a], 10);
        let mut ns: Vec<usize> = g.neighbors(a).map(NodeIndex::index).collect();
        ns.sort_unstable();
        assert_eq!(ns, vec![1, 2]);
        assert_eq!(g.neighbors(b).count(), 1);
        assert_eq!(g.node_weight(c), Some(&30));
    }

    #[test]
    fn undirected_edges_visible_from_both_ends() {
        let mut g: UnGraph<(), u8> = UnGraph::new_undirected();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 7);
        assert_eq!(g.neighbors(b).next(), Some(a));
        assert_eq!(g.neighbors(a).next(), Some(b));
    }
}
