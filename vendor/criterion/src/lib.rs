//! Offline stand-in for the subset of the `criterion` 0.8 API used by
//! this workspace (see `vendor/README.md`).
//!
//! A deliberately small wall-clock harness: each benchmark is warmed up
//! once and then timed over an adaptive number of iterations (capped so
//! even second-long benchmarks finish promptly). When the binary is run
//! without the `--bench` flag cargo passes during `cargo bench` (e.g.
//! under `cargo test --benches`), each benchmark body executes exactly
//! once as a smoke test and nothing is measured.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (the real crate forwards
/// to `std::hint::black_box` on recent toolchains too).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Runs and times one benchmark body.
pub struct Bencher {
    measure: bool,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, warming up once, then iterating until ~100 ms
    /// of samples or 1000 iterations, whichever comes first.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.measure {
            black_box(routine());
            return;
        }
        let warmup = Instant::now();
        black_box(routine());
        let first = warmup.elapsed();
        // pick an iteration count that keeps total time near 100 ms
        let budget = Duration::from_millis(100);
        let per_iter = first.max(Duration::from_nanos(1));
        let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = iters;
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let measure = bench_mode();
    let mut b = Bencher {
        measure,
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut b);
    if measure && b.iterations > 0 {
        let per_iter = b.elapsed.as_nanos() / u128::from(b.iterations);
        println!("{name:<50} {per_iter:>12} ns/iter ({} iterations)", b.iterations);
    } else if !measure {
        println!("{name:<50} smoke-tested (run with `cargo bench` to measure)");
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts (and ignores) command-line configuration, mirroring the
    /// real crate's builder so generated mains stay source-compatible.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Registers and runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self {
        run_one(&id.into(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Prints the final summary (no-op in the stand-in).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepts (and ignores) the sample-size hint.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers and runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Defines a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut runs = 0u32;
        Criterion::default().bench_function("t", |b| b.iter(|| runs += 1));
        assert!(runs >= 1);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut hits = 0u32;
        group
            .sample_size(10)
            .bench_function("inner", |b| b.iter(|| hits += 1));
        group.finish();
        assert!(hits >= 1);
    }
}
