//! The §8 case study: when a program needs at most half the machine,
//! should you run two concurrent copies (more trials) or one copy on
//! the strongest qubits (better trials)? STPT — successful trials per
//! unit time — decides.
//!
//! Run with `cargo run --example partitioning`.

use quva::{partition_analysis, MappingPolicy, PartitionChoice};
use quva_benchmarks::partition_suite;
use quva_device::Device;
use quva_sim::CoherenceModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::ibm_q20();
    println!("machine: {device}\n");

    for bench in partition_suite() {
        let report = partition_analysis(
            bench.circuit(),
            &device,
            MappingPolicy::vqa_vqm(),
            CoherenceModel::Disabled,
        )?;

        println!("{}:", bench.name());
        println!(
            "  one strong copy : PST {:.4}  (STPT {:.4})",
            report.one_strong.pst,
            report.stpt_one()
        );
        match &report.two_copies {
            Some((x, y)) => {
                println!(
                    "  two copies      : PST {:.4} + {:.4}  (STPT {:.4})",
                    x.pst,
                    y.pst,
                    report.stpt_two()
                );
            }
            None => println!("  two copies      : do not fit"),
        }
        let verdict = match report.recommend() {
            PartitionChoice::OneStrongCopy => "run ONE strong copy",
            PartitionChoice::TwoCopies => "run TWO concurrent copies",
        };
        println!("  recommendation  : {verdict}\n");
    }
    Ok(())
}
