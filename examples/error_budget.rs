//! Where does a trial die? Decomposes the failure weight of compiled
//! programs into gate, readout, and coherence contributions, and shows
//! how the variation-aware policy reshapes the gate share.
//!
//! Run with `cargo run --example error_budget`.

use quva::MappingPolicy;
use quva_benchmarks::table1_suite;
use quva_device::Device;
use quva_sim::CoherenceModel;
use quva_viz::bar_chart;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::ibm_q20();
    println!("{device}\n");
    println!(
        "{:<8} {:>6} {:>9} {:>9} {:>11} {:>14}",
        "program", "policy", "gate_w", "readout_w", "coherence_w", "experienced_2q"
    );

    for bench in table1_suite().into_iter().take(4) {
        for policy in [MappingPolicy::baseline(), MappingPolicy::vqa_vqm()] {
            let compiled = policy.compile(bench.circuit(), &device)?;
            let report = compiled.analytic_pst(&device, CoherenceModel::IdleWindow)?;
            println!(
                "{:<8} {:>6} {:>9.3} {:>9.3} {:>11.3} {:>13.2}%",
                bench.name(),
                if policy == MappingPolicy::baseline() {
                    "base"
                } else {
                    "aware"
                },
                report.gate_failure_weight,
                report.readout_failure_weight,
                report.coherence_failure_weight,
                compiled.experienced_link_error(&device) * 100.0,
            );
        }
    }

    // the headline picture: PST side by side for bv-16
    let bench = quva_benchmarks::Benchmark::bv(16);
    let pst = |p: MappingPolicy| -> Result<f64, Box<dyn std::error::Error>> {
        Ok(p.compile(bench.circuit(), &device)?
            .analytic_pst(&device, CoherenceModel::Disabled)?
            .pst)
    };
    let rows = [
        ("native(0)", pst(MappingPolicy::native(0))?),
        ("baseline", pst(MappingPolicy::baseline())?),
        ("VQM", pst(MappingPolicy::vqm())?),
        ("VQA+VQM", pst(MappingPolicy::vqa_vqm())?),
    ];
    println!("\nbv-16 PST by policy:");
    print!("{}", bar_chart(&rows, 40));
    println!("\nThe aware policy lowers the *experienced* link error — traffic steers off weak links.");
    Ok(())
}
