//! Quickstart: compile a Bernstein–Vazirani program for the IBM-Q20
//! with the variation-unaware baseline and with VQA+VQM, then compare
//! reliability.
//!
//! Run with `cargo run --example quickstart`.

use quva::MappingPolicy;
use quva_benchmarks::bv;
use quva_device::Device;
use quva_sim::{monte_carlo_pst, CoherenceModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The IBM-Q20 Tokyo machine with the paper's average error map:
    // link error rates span 2%..15% — a 7.5x spread.
    let device = Device::ibm_q20();
    println!("device: {device}");

    // A 16-qubit Bernstein–Vazirani kernel (Table 1's bv-16).
    let program = bv(16);
    println!(
        "program: bv-16 — {} gates, {} CNOTs, depth {}",
        program.len(),
        program.cnot_count(),
        program.depth()
    );

    for policy in [
        MappingPolicy::baseline(),
        MappingPolicy::vqm(),
        MappingPolicy::vqa_vqm(),
    ] {
        let compiled = policy.compile(&program, &device)?;
        // exact PST under the paper's uncorrelated error model ...
        let analytic = compiled.analytic_pst(&device, CoherenceModel::Disabled)?.pst;
        // ... cross-checked by Monte-Carlo fault injection (Fig. 10)
        let mc = monte_carlo_pst(&device, compiled.physical(), 100_000, 7, CoherenceModel::Disabled)?;
        println!(
            "{:<10} inserted {:>3} swaps | analytic PST {:.4} | monte-carlo PST {:.4} ± {:.4}",
            policy.name(),
            compiled.inserted_swaps(),
            analytic,
            mc.pst,
            mc.std_error(),
        );
    }

    println!("\nVariation-aware mapping avoids the weak links, so more trials succeed.");
    Ok(())
}
