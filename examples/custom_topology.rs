//! Bringing your own machine: define a custom coupling topology and
//! calibration, import a circuit from OpenQASM, compile it with every
//! policy, and validate on the noisy state-vector simulator.
//!
//! Run with `cargo run --example custom_topology`.

use quva::MappingPolicy;
use quva_circuit::qasm;
use quva_device::{Calibration, Device, GateDurations, Topology};
use quva_sim::run_noisy_trials;

const GHZ_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hypothetical 6-qubit machine: a ring with one chord, with one
    // sick link — like Fig. 1's example device.
    let topology = Topology::from_links(
        "hexring",
        6,
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)],
    );
    let calibration = Calibration::new(
        &topology,
        vec![75.0; 6],                                  // T1 µs
        vec![40.0; 6],                                  // T2 µs
        vec![0.001; 6],                                 // 1Q error
        vec![0.02; 6],                                  // readout error
        vec![0.03, 0.25, 0.03, 0.02, 0.04, 0.03, 0.02], // 2Q error per link; link 1–2 is sick
        GateDurations::default(),
    )?;
    let device = Device::from_parts(topology, calibration)?;
    println!("custom machine: {device}");

    // Import a GHZ-4 kernel from OpenQASM.
    let program = qasm::from_qasm(GHZ_QASM)?;
    println!("imported {} gates from QASM\n", program.len());

    let ghz_accept = |o: u64| o == 0 || o == 0b1111;
    for policy in [
        MappingPolicy::native(0),
        MappingPolicy::baseline(),
        MappingPolicy::vqa_vqm(),
    ] {
        let compiled = policy.compile(&program, &device)?;
        // validate end-to-end on the noisy state-vector simulator
        let outcomes = run_noisy_trials(&device, compiled.physical(), 4096, 11)?;
        println!(
            "{:<10} +{} swaps, GHZ fidelity over 4096 noisy trials: {:.3}",
            policy.name(),
            compiled.inserted_swaps(),
            outcomes.success_rate(ghz_accept),
        );
    }

    println!("\nExport the best compilation back to QASM with quva_circuit::qasm::to_qasm.");
    Ok(())
}
