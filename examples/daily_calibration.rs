//! Recompiling against each day's calibration (§6.5 / Fig. 14): NISQ
//! machines drift between calibration cycles, so the paper assumes the
//! runtime recompiles each workload with the freshest error data. This
//! example generates a fortnight of synthetic IBM-Q20 calibrations and
//! shows how the variation-aware benefit tracks the day's variability.
//!
//! Run with `cargo run --example daily_calibration`.

use quva::MappingPolicy;
use quva_benchmarks::bv;
use quva_device::{CalibrationGenerator, Device, Topology, VariationProfile};
use quva_sim::CoherenceModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = Topology::ibm_q20_tokyo();
    let mut generator = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 7);
    let fortnight = generator.daily_series(&topology, 14);
    let program = bv(16);

    println!("day  mean2q%  spread  baseline-PST  vqa+vqm-PST  benefit");
    for (day, calibration) in fortnight.into_iter().enumerate() {
        let spread = calibration.variation_ratio();
        let mean = calibration.mean_two_qubit_error() * 100.0;
        let device = Device::from_parts(topology.clone(), calibration)?;

        let pst = |policy: MappingPolicy| -> Result<f64, Box<dyn std::error::Error>> {
            let compiled = policy.compile(&program, &device)?;
            Ok(compiled.analytic_pst(&device, CoherenceModel::Disabled)?.pst)
        };
        let base = pst(MappingPolicy::baseline())?;
        let aware = pst(MappingPolicy::vqa_vqm())?;
        println!(
            "{day:>3}  {mean:>6.2}  {spread:>5.1}x  {base:>12.4}  {aware:>11.4}  {:>6.2}x",
            aware / base
        );
    }

    println!("\nHigher-variability days leave more on the table for variation-aware mapping.");
    Ok(())
}
